"""Recursive-descent parser for the engine's SQL subset.

The parser produces statement objects (:mod:`repro.engine.sql.ast`)
whose SELECT statements carry :class:`~repro.engine.logical.LogicalQuery`
instances built from the engine's expression AST, so the planner can be
used unchanged whether a query arrives as SQL text or through the
programmatic builder.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import SQLSyntaxError
from ..expressions import (AggregateCall, Between, BinaryOp, CaseWhen, ColumnRef,
                           Expression, FunctionCall, InList, Like, Literal,
                           Star, UnaryOp, Variable)
from ..logical import (FunctionRef, Join, LogicalQuery, OrderItem, RelationRef,
                       SelectItem, TableRef)
from .ast import (AnalyzeStatement, DeclareStatement, SelectStatement,
                  SetStatement, Statement)
from .lexer import Token, TokenType, tokenize

#: Words that terminate an expression / cannot be bare aliases.
_RESERVED = {
    "select", "from", "where", "group", "order", "having", "into", "join",
    "inner", "left", "right", "outer", "cross", "on", "and", "or", "not",
    "between", "in", "like", "is", "null", "as", "top", "distinct", "asc",
    "desc", "by", "declare", "set", "case", "when", "then", "else", "end",
    "union", "exists", "analyze",
}

#: Aggregate function names recognised by the parser.
_AGGREGATES = {"count", "sum", "avg", "min", "max"}


class _Parser:
    def __init__(self, tokens: Sequence[Token], text: str = ""):
        self.tokens = list(tokens)
        self.position = 0
        self.text = text

    # -- token helpers -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.END:
            self.position += 1
        return token

    def at_end(self) -> bool:
        return self.peek().type is TokenType.END

    def error(self, message: str) -> SQLSyntaxError:
        token = self.peek()
        return SQLSyntaxError(f"{message} (near {token.value!r})",
                              line=token.line, column=token.column)

    def expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.type is not token_type or (
                value is not None and token.value.lower() != value.lower()):
            expected = value or token_type.name
            raise self.error(f"expected {expected}")
        return self.advance()

    def accept_keyword(self, *keywords: str) -> bool:
        if self.peek().is_keyword(*keywords):
            self.advance()
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise self.error(f"expected {keyword.upper()}")

    # -- statements -----------------------------------------------------------

    def parse_batch(self) -> list[Statement]:
        statements: list[Statement] = []
        while not self.at_end():
            if self.peek().type is TokenType.SEMICOLON:
                self.advance()
                continue
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.is_keyword("declare"):
            return self.parse_declare()
        if token.is_keyword("set"):
            return self.parse_set()
        if token.is_keyword("select"):
            return SelectStatement(query=self.parse_select())
        if token.is_keyword("analyze"):
            return self.parse_analyze()
        raise self.error("expected DECLARE, SET, SELECT or ANALYZE")

    def parse_analyze(self) -> AnalyzeStatement:
        self.expect_keyword("analyze")
        table: Optional[str] = None
        token = self.peek()
        # A reserved word here starts the batch's next statement
        # (semicolons are optional): bare ANALYZE analyzes everything.
        if token.type is TokenType.NAME and token.value.lower() not in _RESERVED:
            table = self.parse_object_name()
        return AnalyzeStatement(table=table)

    def parse_declare(self) -> DeclareStatement:
        self.expect_keyword("declare")
        statement = DeclareStatement()
        while True:
            variable = self.expect(TokenType.VARIABLE)
            type_name = self.expect(TokenType.NAME).value
            if self.peek().type is TokenType.LPAREN:
                self.advance()
                self.expect(TokenType.NUMBER)
                self.expect(TokenType.RPAREN)
            statement.names.append(variable.value)
            statement.types.append(type_name)
            if self.peek().type is TokenType.COMMA:
                self.advance()
                continue
            break
        return statement

    def parse_set(self) -> SetStatement:
        self.expect_keyword("set")
        variable = self.expect(TokenType.VARIABLE)
        self.expect(TokenType.OPERATOR, "=")
        expression = self.parse_or()
        return SetStatement(name=variable.value, expression=expression)

    # -- SELECT ---------------------------------------------------------------

    def parse_select(self) -> LogicalQuery:
        self.expect_keyword("select")
        query = LogicalQuery()
        if self.accept_keyword("top"):
            count = self.expect(TokenType.NUMBER)
            query.top = int(float(count.value))
        if self.accept_keyword("distinct"):
            query.distinct = True
        query.select = self.parse_select_list()
        if self.accept_keyword("into"):
            query.into = self.parse_object_name()
        if self.accept_keyword("from"):
            query.relations.append(self.parse_from_item())
            while True:
                if self.peek().type is TokenType.COMMA:
                    self.advance()
                    query.relations.append(self.parse_from_item())
                    continue
                if self.peek().is_keyword("inner", "join"):
                    self.accept_keyword("inner")
                    self.expect_keyword("join")
                    relation = self.parse_from_item()
                    self.expect_keyword("on")
                    condition = self.parse_or()
                    query.joins.append(Join(relation, condition))
                    continue
                break
        if self.accept_keyword("where"):
            query.where = self.parse_or()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            query.group_by.append(self.parse_or())
            while self.peek().type is TokenType.COMMA:
                self.advance()
                query.group_by.append(self.parse_or())
        if self.accept_keyword("having"):
            query.having = self.parse_or()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            query.order_by.append(self.parse_order_item())
            while self.peek().type is TokenType.COMMA:
                self.advance()
                query.order_by.append(self.parse_order_item())
        return query

    def parse_select_list(self) -> list[SelectItem]:
        items = [self.parse_select_item()]
        while self.peek().type is TokenType.COMMA:
            self.advance()
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> SelectItem:
        if self.peek().type is TokenType.STAR:
            self.advance()
            return SelectItem(Star())
        # alias.* form
        if (self.peek().type is TokenType.NAME
                and self.peek(1).type is TokenType.DOT
                and self.peek(2).type is TokenType.STAR):
            qualifier = self.advance().value
            self.advance()
            self.advance()
            return SelectItem(Star(qualifier))
        expression = self.parse_or()
        alias: Optional[str] = None
        if self.accept_keyword("as"):
            alias = self.expect(TokenType.NAME).value
        elif (self.peek().type is TokenType.NAME
              and self.peek().value.lower() not in _RESERVED):
            alias = self.advance().value
        return SelectItem(expression, alias)

    def parse_order_item(self) -> OrderItem:
        expression = self.parse_or()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderItem(expression, descending)

    def parse_object_name(self) -> str:
        parts = [self.expect(TokenType.NAME).value]
        while self.peek().type is TokenType.DOT:
            self.advance()
            parts.append(self.expect(TokenType.NAME).value)
        # dbo.name -> name; keep only the trailing object name.
        return parts[-1]

    def parse_from_item(self) -> RelationRef:
        parts = [self.expect(TokenType.NAME).value]
        while self.peek().type is TokenType.DOT:
            self.advance()
            parts.append(self.expect(TokenType.NAME).value)
        args: Optional[list[Expression]] = None
        if self.peek().type is TokenType.LPAREN:
            self.advance()
            args = []
            if self.peek().type is not TokenType.RPAREN:
                args.append(self.parse_or())
                while self.peek().type is TokenType.COMMA:
                    self.advance()
                    args.append(self.parse_or())
            self.expect(TokenType.RPAREN)
        alias: Optional[str] = None
        if self.accept_keyword("as"):
            alias = self.expect(TokenType.NAME).value
        elif (self.peek().type is TokenType.NAME
              and self.peek().value.lower() not in _RESERVED):
            alias = self.advance().value
        name = parts[-1] if parts[0].lower() == "dbo" and len(parts) > 1 else ".".join(parts)
        if args is not None:
            return FunctionRef(name, args, alias)
        return TableRef(name, alias)

    # -- expressions -------------------------------------------------------------

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.peek().is_keyword("or"):
            self.advance()
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.peek().is_keyword("and"):
            self.advance()
            left = BinaryOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.peek().is_keyword("not"):
            self.advance()
            return UnaryOp("not", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        left = self.parse_additive()
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            operator = self.advance().value
            right = self.parse_additive()
            return BinaryOp(operator, left, right)
        negated = False
        if token.is_keyword("not") and self.peek(1).is_keyword("between", "in", "like"):
            negated = True
            self.advance()
            token = self.peek()
        if token.is_keyword("between"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            return Between(left, low, high, negated)
        if token.is_keyword("in"):
            self.advance()
            self.expect(TokenType.LPAREN)
            items = [self.parse_or()]
            while self.peek().type is TokenType.COMMA:
                self.advance()
                items.append(self.parse_or())
            self.expect(TokenType.RPAREN)
            return InList(left, items, negated)
        if token.is_keyword("like"):
            self.advance()
            pattern = self.parse_additive()
            return Like(left, pattern, negated)
        if token.is_keyword("is"):
            self.advance()
            if self.accept_keyword("not"):
                self.expect_keyword("null")
                return UnaryOp("is not null", left)
            self.expect_keyword("null")
            return UnaryOp("is null", left)
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "&", "|", "^"):
                operator = self.advance().value
                left = BinaryOp(operator, left, self.parse_multiplicative())
                continue
            return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.type is TokenType.STAR:
                self.advance()
                left = BinaryOp("*", left, self.parse_unary())
                continue
            if token.type is TokenType.OPERATOR and token.value in ("/", "%"):
                operator = self.advance().value
                left = BinaryOp(operator, left, self.parse_unary())
                continue
            return left

    def parse_unary(self) -> Expression:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in ("-", "+"):
            operator = self.advance().value
            return UnaryOp(operator, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.VARIABLE:
            self.advance()
            return Variable(token.value)
        if token.type is TokenType.LPAREN:
            self.advance()
            expression = self.parse_or()
            self.expect(TokenType.RPAREN)
            return expression
        if token.is_keyword("case"):
            return self.parse_case()
        if token.is_keyword("null"):
            self.advance()
            return Literal(None)
        if token.type is TokenType.NAME:
            return self.parse_name_or_call()
        raise self.error("expected an expression")

    def parse_case(self) -> Expression:
        self.expect_keyword("case")
        branches: list[tuple[Expression, Expression]] = []
        default: Optional[Expression] = None
        while self.peek().is_keyword("when"):
            self.advance()
            condition = self.parse_or()
            self.expect_keyword("then")
            value = self.parse_or()
            branches.append((condition, value))
        if self.accept_keyword("else"):
            default = self.parse_or()
        self.expect_keyword("end")
        if not branches:
            raise self.error("CASE requires at least one WHEN branch")
        return CaseWhen(branches, default)

    def parse_name_or_call(self) -> Expression:
        parts = [self.advance().value]
        while self.peek().type is TokenType.DOT and self.peek(1).type is TokenType.NAME:
            self.advance()
            parts.append(self.advance().value)
        if self.peek().type is TokenType.LPAREN:
            name = ".".join(parts)
            self.advance()
            bare = name.split(".")[-1].lower()
            if bare in _AGGREGATES:
                return self.parse_aggregate_arguments(bare)
            args: list[Expression] = []
            if self.peek().type is not TokenType.RPAREN:
                args.append(self.parse_or())
                while self.peek().type is TokenType.COMMA:
                    self.advance()
                    args.append(self.parse_or())
            self.expect(TokenType.RPAREN)
            return FunctionCall(name, args)
        if len(parts) == 1:
            return ColumnRef(parts[0])
        if len(parts) == 2:
            return ColumnRef(parts[1], parts[0])
        raise self.error(f"cannot resolve dotted name {'.'.join(parts)!r}")

    def parse_aggregate_arguments(self, func: str) -> Expression:
        distinct = self.accept_keyword("distinct")
        if self.peek().type is TokenType.STAR:
            self.advance()
            self.expect(TokenType.RPAREN)
            return AggregateCall(func, None, distinct)
        argument = self.parse_or()
        self.expect(TokenType.RPAREN)
        return AggregateCall(func, argument, distinct)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def parse_batch(text: str) -> list[Statement]:
    """Parse a multi-statement SQL batch."""
    parser = _Parser(tokenize(text), text)
    statements = parser.parse_batch()
    for statement in statements:
        statement.sql_text = text
    return statements


def parse_select(text: str) -> LogicalQuery:
    """Parse a single SELECT statement into a logical query."""
    parser = _Parser(tokenize(text), text)
    query = parser.parse_select()
    if not parser.at_end() and parser.peek().type is not TokenType.SEMICOLON:
        raise parser.error("unexpected trailing tokens after SELECT")
    return query


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (used by view definitions and tests)."""
    parser = _Parser(tokenize(text), text)
    expression = parser.parse_or()
    if not parser.at_end():
        raise parser.error("unexpected trailing tokens after expression")
    return expression
