"""Statement-level AST for SQL batches.

Expressions inside statements reuse the engine's expression AST
(:mod:`repro.engine.expressions`), and SELECT statements carry a
:class:`~repro.engine.logical.LogicalQuery` directly, so the only
SQL-specific nodes needed here are the statements themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..expressions import Expression
from ..logical import LogicalQuery


@dataclass
class Statement:
    """Base class for parsed statements."""

    sql_text: str = ""


@dataclass
class DeclareStatement(Statement):
    """``DECLARE @name type [, @name type ...]``."""

    names: list[str] = field(default_factory=list)
    types: list[str] = field(default_factory=list)


@dataclass
class SetStatement(Statement):
    """``SET @name = expression``."""

    name: str = ""
    expression: Optional[Expression] = None


@dataclass
class SelectStatement(Statement):
    """A SELECT (possibly with INTO) carrying its logical query."""

    query: Optional[LogicalQuery] = None


@dataclass
class AnalyzeStatement(Statement):
    """``ANALYZE [table]``: collect optimizer statistics.

    Without a table name every table in the catalog is analyzed.
    """

    table: Optional[str] = None
