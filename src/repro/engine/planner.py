"""The query planner: from a :class:`LogicalQuery` to a physical operator tree.

The planner mirrors the behaviour the paper relies on from SQL Server:

* view references are folded down to the base table with their
  additional qualifiers (§9.1.3);
* an index whose key matches a sargable predicate prefix is used as an
  index seek; an index that *covers* the referenced columns is used as
  a narrow covering-index scan (the "tag table" replacement); otherwise
  the plan falls back to a sequential table scan with the predicate
  evaluated per row (the "complex colour cut" queries of §11);
* small relations — in particular the spatial table-valued functions —
  are placed on the outer side of an index nested-loop join that probes
  the big table's index (Figure 10's Query 1 plan);
* equality joins without a usable index become hash joins, and anything
  else becomes a nested-loop join (the "without the index ... nested
  loops join of two table scans" case of §11).

With ``enable_cbo=True`` (the default) the planner is a **cost-based
optimizer**: cardinalities come from the catalog's ``ANALYZE``
statistics (histograms, MCVs, distinct counts — see
:mod:`repro.engine.stats`) with the constants above as fallback,
access paths are chosen by comparing scan/covering-scan/index-seek cost
formulas, and joins are enumerated greedily in cost order with the
smaller estimated input as the hash-join build side.
``Planner(enable_cbo=False)`` keeps the original heuristic behaviour.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

from .catalog import Database
from .errors import BindError, PlanError
from .expressions import (AggregateCall, Between, BinaryOp, CaseWhen,
                          ColumnRef, Expression, FunctionCall, InList, Like,
                          Literal, SargablePredicate, Star, UnaryOp,
                          combine_conjuncts, conjuncts, extract_sargable)
from .index import BTreeIndex
from .logical import FunctionRef, LogicalQuery, RelationRef
from .operators import (CoveringIndexScan, DistinctOp, FilterOp, FunctionScan,
                        GroupAggregate, HashJoin, IndexNestedLoopJoin,
                        IndexRangeScan, InsertIntoOp, NestedLoopJoin,
                        PhysicalOperator, PhysicalPlan, ProjectOp, SortMergeJoin,
                        SortOp, TableScan, TopOp)
from .stats import TableStatistics
from .table import Table
from .types import NULL, DataType

#: Integer-valued column types whose float-accumulated SUM/AVG partials
#: merge bit-exactly while the total stays below 2**53 (the same rule
#: the cluster executor applies to shard partials — keep in sync with
#: ``repro.cluster.executor._EXACT_SUM_TYPES``).
_EXACT_SUM_TYPES = (DataType.INTEGER, DataType.BIGINT, DataType.BOOLEAN)

#: Column types the sort-merge sortedness verification accepts (ordered
#: scalar comparisons with no surprises).
_MERGE_KEY_TYPES = (DataType.INTEGER, DataType.BIGINT, DataType.FLOAT)


def _proper_subsets(members: Sequence[str]) -> Iterator[frozenset]:
    """Every nonempty proper subset of ``members``, as frozensets.

    Deterministic order — by size, then combination order of the sorted
    member tuple — which keeps the DP enumeration's tie-breaks stable.
    """
    for size in range(1, len(members)):
        for combo in itertools.combinations(members, size):
            yield frozenset(combo)

#: Sentinel for "this bound does not fold to a plan-time constant".
_UNKNOWN = object()


# ---------------------------------------------------------------------------
# Expression utilities
# ---------------------------------------------------------------------------

def transform_expression(expression: Expression, visit) -> Expression:
    """Rebuild an expression bottom-up, applying ``visit`` to every node."""
    if isinstance(expression, BinaryOp):
        rebuilt: Expression = BinaryOp(expression.op,
                                       transform_expression(expression.left, visit),
                                       transform_expression(expression.right, visit))
    elif isinstance(expression, UnaryOp):
        rebuilt = UnaryOp(expression.op, transform_expression(expression.operand, visit))
    elif isinstance(expression, Between):
        rebuilt = Between(transform_expression(expression.operand, visit),
                          transform_expression(expression.low, visit),
                          transform_expression(expression.high, visit),
                          expression.negated)
    elif isinstance(expression, InList):
        rebuilt = InList(transform_expression(expression.operand, visit),
                         [transform_expression(item, visit) for item in expression.items],
                         expression.negated)
    elif isinstance(expression, Like):
        rebuilt = Like(transform_expression(expression.operand, visit),
                       transform_expression(expression.pattern, visit),
                       expression.negated)
    elif isinstance(expression, FunctionCall):
        rebuilt = FunctionCall(expression.name,
                               [transform_expression(arg, visit) for arg in expression.args])
    elif isinstance(expression, CaseWhen):
        rebuilt = CaseWhen(
            [(transform_expression(cond, visit), transform_expression(value, visit))
             for cond, value in expression.branches],
            transform_expression(expression.default, visit)
            if expression.default is not None else None)
    elif isinstance(expression, AggregateCall):
        rebuilt = AggregateCall(
            expression.func,
            transform_expression(expression.argument, visit)
            if expression.argument is not None else None,
            expression.distinct)
    else:
        rebuilt = expression
    return visit(rebuilt)


def qualify_columns(expression: Expression, binding_name: str, table: Table) -> Expression:
    """Qualify unqualified column references that belong to ``table``."""

    def visit(node: Expression) -> Expression:
        if isinstance(node, ColumnRef) and node.qualifier is None and table.has_column(node.name):
            return ColumnRef(node.name, binding_name)
        return node

    return transform_expression(expression, visit)


def collect_aggregates(expression: Expression) -> list[AggregateCall]:
    found: list[AggregateCall] = []

    def walk(node: Expression) -> None:
        if isinstance(node, AggregateCall):
            found.append(node)
            return
        for child in node.children():
            walk(child)

    walk(expression)
    return found


# ---------------------------------------------------------------------------
# Planner internals
# ---------------------------------------------------------------------------

@dataclass
class _RelationInfo:
    """Everything the planner knows about one FROM-clause relation."""

    ref: RelationRef
    binding_name: str
    kind: str                       # "table" or "function"
    table: Optional[Table] = None
    view_chain: list[str] = field(default_factory=list)
    function_name: str = ""
    function_args: Sequence[Expression] = ()
    local_conjuncts: list[Expression] = field(default_factory=list)
    estimated_rows: int = 0

    @property
    def display_name(self) -> str:
        if self.kind == "function":
            return self.function_name
        assert self.table is not None
        return self.table.name


@dataclass
class _PlannedAccessPath:
    operator: PhysicalOperator
    estimated_rows: int
    cost: float = 0.0


class Planner:
    """Builds physical plans for one database."""

    #: Selectivity guesses used for cardinality estimation.  Without column
    #: histograms these are deliberately conservative: an equality predicate
    #: on a non-unique column (e.g. ``type = 'galaxy'``) keeps a sizeable
    #: fraction of the table, so small relations such as the spatial
    #: table-valued functions still win the outer position of a nested-loop
    #: join (the Figure 10 plan).
    EQUALITY_SELECTIVITY = 0.05
    RANGE_SELECTIVITY = 0.25
    RESIDUAL_SELECTIVITY = 0.5

    #: Cost-model constants (arbitrary units; one sequentially scanned
    #: row costs 1).  A random lookup through an index pays for the
    #: bookmark fetch; hash joins pay per build row (table insert) and
    #: per probe row; covering structures are discounted by their
    #: entry-to-row width ratio.
    SEQ_ROW_COST = 1.0
    RANDOM_LOOKUP_COST = 4.0
    INDEX_ENTRY_COST = 1.0
    HASH_BUILD_COST = 2.0
    HASH_PROBE_COST = 1.0
    #: A sort-merge join touches each input row once with no hash-table
    #: build, so both sides pay the sequential rate.
    MERGE_ROW_COST = 1.0

    #: Tables below this row count are not worth splitting into morsels:
    #: a parallel scan pays a lease, per-morsel dispatch and an ordered
    #: gather, which only amortises over enough batches.
    PARALLEL_ROW_THRESHOLD = 10_000

    #: DPsize enumerates every connected subset split, which is
    #: exponential in the relation count; past this many relations the
    #: greedy planner takes over (the classical cutoff for DP join
    #: enumeration).
    DP_RELATION_LIMIT = 8

    def __init__(self, database: Database, *, enable_hash_join: bool = True,
                 enable_fusion: bool = True, enable_vectorized: bool = True,
                 enable_cbo: bool = True, enable_index_join: bool = True,
                 enable_sort_merge: bool = False, parallelism: int = 1,
                 parallel_row_threshold: Optional[int] = None,
                 simulated_scan_mbps: Optional[float] = None,
                 enable_zone_maps: bool = True,
                 enable_runtime_filters: bool = True,
                 enable_dp_joins: bool = False):
        self.database = database
        #: When False, equality joins without a usable index fall back to a
        #: nested-loop join of the two inputs — the plan SQL Server 2000 chose
        #: for the paper's NEO query once its covering index was removed
        #: (Figure 12's "about 10 minutes" case).  The ablation benchmark uses
        #: this to reproduce that comparison.
        self.enable_hash_join = enable_hash_join
        #: When False, single-table plans never take the fused
        #: scan→filter→project fast path (the compilation benchmark's baseline).
        self.enable_fusion = enable_fusion
        #: When False, plans over column-backed tables stay row-at-a-time
        #: (the columnar benchmark's ablation switch).
        self.enable_vectorized = enable_vectorized
        #: When False, cost-based planning is disabled and the original
        #: heuristic planner (fixed selectivity constants, syntactic-ish
        #: join order) runs unchanged.
        self.enable_cbo = enable_cbo
        #: When False, index nested-loop joins are never considered —
        #: together with ``enable_hash_join`` this pins the join strategy
        #: (the join-equivalence property tests force all three).
        self.enable_index_join = enable_index_join
        #: When True, equality joins between two base-table scans that
        #: are both verifiably stored in key order are also costed as a
        #: sort-merge join.  Off by default: plans (and EXPLAIN output)
        #: must stay byte-identical unless the knob is turned.
        self.enable_sort_merge = enable_sort_merge
        #: Morsel-parallel degree requested for eligible scans.  1 (the
        #: default) plans exactly as before — no operator is annotated
        #: and execution stays serial.
        self.parallelism = max(1, parallelism)
        #: Row-count floor below which scans stay serial even with
        #: ``parallelism > 1`` (tests pass 0 to force parallel plans).
        self.parallel_row_threshold = (self.PARALLEL_ROW_THRESHOLD
                                       if parallel_row_threshold is None
                                       else max(0, parallel_row_threshold))
        #: Simulated sequential-scan bandwidth (MB/s) charged as sleep
        #: time per batch — the same knob the cluster executor exposes,
        #: so single-node parallel speedups are measurable under the
        #: I/O model of §5 rather than pure-GIL compute.
        self.simulated_scan_mbps = simulated_scan_mbps
        #: When False, batch scans never consult per-segment zone maps
        #: (every sealed segment is scanned) and scalar aggregates never
        #: answer segments from them — the segment benchmark's ablation
        #: baseline.  Results are byte-identical either way; only the
        #: amount of data touched changes.
        self.enable_zone_maps = enable_zone_maps
        #: When False, batch hash joins never derive a runtime filter
        #: from a finished build (the benchmark's ablation baseline).
        #: Runtime filters only ever drop probe work the join's exact
        #: hash lookup would drop, so results are byte-identical either
        #: way; only the data touched changes.
        self.enable_runtime_filters = enable_runtime_filters
        #: When True, join order comes from bushy dynamic programming
        #: (DPsize) over the same CBO cost formulas instead of the
        #: greedy one-relation-at-a-time loop; above
        #: ``DP_RELATION_LIMIT`` relations the greedy planner takes
        #: over.  Off by default: plans must stay byte-identical unless
        #: the knob is turned.
        self.enable_dp_joins = enable_dp_joins
        #: Sortedness verification cache for sort-merge planning:
        #: (table, column) -> (modification_counter, is_sorted).
        self._sorted_cache: dict[tuple[str, str], tuple[int, bool]] = {}
        #: Number of plans built; the plan-cache tests assert a cache hit
        #: leaves this untouched.
        self.plans_built = 0
        #: Relational plans costed with ANALYZE statistics vs planned on
        #: fallback constants (no statistics, or ``enable_cbo=False``).
        self.cbo_plans = 0
        self.fallback_plans = 0
        #: Join orders settled by dynamic programming vs the greedy loop
        #: (only plans with 2+ relations under ``enable_dp_joins``).
        self.dp_plans = 0
        #: Per-plan cardinality-feedback overrides (binding -> observed
        #: rows), set for the duration of one ``plan()`` call.
        self._overrides: dict[str, int] = {}

    # -- public API ---------------------------------------------------------

    def plan(self, query: LogicalQuery, *,
             cardinality_overrides: Optional[dict[str, int]] = None
             ) -> PhysicalPlan:
        self.plans_built += 1
        if not query.select:
            raise PlanError("query has an empty select list")
        if not query.all_relations():
            return self._plan_relationless(query)

        relations = [self._resolve_relation(ref) for ref in query.all_relations()]
        by_name = {info.binding_name: info for info in relations}
        if len(by_name) != len(relations):
            raise BindError("duplicate relation alias in FROM clause")

        #: Cardinality feedback: observed per-binding row counts from a
        #: previous execution replace the selectivity-model estimate in
        #: ``_estimate_relation_cbo`` for the duration of this plan.
        self._overrides = {name.lower(): max(1, int(rows))
                           for name, rows in (cardinality_overrides or {}).items()}
        try:
            predicate_pool = self._build_predicate_pool(query, relations)
            self._assign_local_conjuncts(predicate_pool, relations)
            if self.enable_cbo:
                has_statistics = any(
                    info.kind == "table"
                    and self.database.table_statistics(info.table.name) is not None
                    for info in relations)
                if has_statistics:
                    self.cbo_plans += 1
                else:
                    self.fallback_plans += 1
                # No per-relation pre-pass: _access_path_cbo computes each
                # relation's post-predicate cardinality exactly once.
                if (self.enable_dp_joins and 1 < len(relations)
                        and len(relations) <= self.DP_RELATION_LIMIT):
                    self.dp_plans += 1
                    root, planned = self._plan_joins_dp(relations,
                                                        predicate_pool, query)
                else:
                    root, planned = self._plan_joins_cbo(relations,
                                                         predicate_pool, query)
            else:
                self.fallback_plans += 1
                for info in relations:
                    info.estimated_rows = self._estimate_relation(info)
                root, planned = self._plan_joins(relations, predicate_pool, query)
        finally:
            self._overrides = {}

        residual = [conjunct for conjunct in predicate_pool.remaining
                    if self._conjunct_aliases(conjunct, by_name) <= planned]
        leftover = [c for c in predicate_pool.remaining if c not in residual]
        if leftover:
            raise PlanError(
                "unplaced predicate(s): " + "; ".join(c.sql() for c in leftover))
        combined = combine_conjuncts(residual)
        if combined is not None:
            root = FilterOp(root, combined)

        return self._finish_plan(root, query, relations)

    # -- relation resolution --------------------------------------------------

    def _resolve_relation(self, ref: RelationRef) -> _RelationInfo:
        if isinstance(ref, FunctionRef):
            function = self.database.functions.table_valued(ref.name)
            return _RelationInfo(ref=ref, binding_name=ref.binding_name, kind="function",
                                 function_name=function.name, function_args=list(ref.args),
                                 estimated_rows=function.row_estimate)
        if self.database.functions.has_table_valued(ref.name):
            # A table-valued function referenced without arguments.
            function = self.database.functions.table_valued(ref.name)
            return _RelationInfo(ref=FunctionRef(ref.name, [], ref.alias),
                                 binding_name=ref.binding_name, kind="function",
                                 function_name=function.name, function_args=[],
                                 estimated_rows=function.row_estimate)
        resolved = self.database.resolve_relation(ref.name)
        table = self.database.table(resolved.table_name)
        info = _RelationInfo(ref=ref, binding_name=ref.binding_name, kind="table",
                             table=table, view_chain=resolved.view_chain,
                             estimated_rows=table.row_count)
        if resolved.predicate is not None:
            qualified = qualify_columns(resolved.predicate, info.binding_name, table)
            info.local_conjuncts.extend(conjuncts(qualified))
        return info

    # -- predicate management ---------------------------------------------------

    @dataclass
    class _PredicatePool:
        remaining: list[Expression] = field(default_factory=list)

    def _build_predicate_pool(self, query: LogicalQuery,
                              relations: Sequence[_RelationInfo]) -> "_PredicatePool":
        pool = Planner._PredicatePool()
        pool.remaining.extend(conjuncts(query.where))
        for join in query.joins:
            pool.remaining.extend(conjuncts(join.condition))
        return pool

    def _assign_local_conjuncts(self, pool: "_PredicatePool",
                                relations: Sequence[_RelationInfo]) -> None:
        by_name = {info.binding_name: info for info in relations}
        still_remaining: list[Expression] = []
        for conjunct in pool.remaining:
            aliases = self._conjunct_aliases(conjunct, by_name)
            if len(aliases) == 1:
                by_name[next(iter(aliases))].local_conjuncts.append(conjunct)
            elif len(aliases) == 0:
                # Constant predicate: keep it as a residual filter.
                still_remaining.append(conjunct)
            else:
                still_remaining.append(conjunct)
        pool.remaining = still_remaining

    def _conjunct_aliases(self, conjunct: Expression,
                          by_name: dict[str, _RelationInfo]) -> set[str]:
        aliases: set[str] = set()
        for qualifier, column in conjunct.referenced_columns():
            if qualifier is not None:
                if qualifier in by_name:
                    aliases.add(qualifier)
                else:
                    raise BindError(f"unknown alias {qualifier!r} in {conjunct.sql()}")
                continue
            owners = [info.binding_name for info in by_name.values()
                      if self._relation_has_column(info, column)]
            if len(owners) == 1:
                aliases.add(owners[0])
            elif len(owners) > 1:
                # Ambiguous unqualified reference: involve every candidate so the
                # predicate stays above the join where all rows are in scope.
                aliases.update(owners)
        return aliases

    def _relation_has_column(self, info: _RelationInfo, column: str) -> bool:
        if info.kind == "table":
            assert info.table is not None
            return info.table.has_column(column)
        function = self.database.functions.table_valued(info.function_name)
        return column.lower() in {name.lower() for name in function.column_names()}

    # -- cardinality estimation ---------------------------------------------------

    @staticmethod
    def _combine_selectivities(selectivities: Sequence[float]) -> float:
        """Compound per-conjunct selectivities with exponential backoff.

        Naive multiplication assumes full independence, so a query with
        many predicates (the NEO pair query has a dozen per side) drives
        the estimate to an absurd near-zero.  Following SQL Server's
        newer cardinality estimator, the most selective predicate counts
        fully and each additional one only with the square root of its
        predecessor's weight: ``s0 * s1^(1/2) * s2^(1/4) * ...``.
        """
        if not selectivities:
            return 1.0
        combined = 1.0
        exponent = 1.0
        for selectivity in sorted(selectivities):
            clamped = min(1.0, max(selectivity, 1e-6))
            combined *= clamped ** exponent
            exponent /= 2.0
        return combined

    def _estimate_relation(self, info: _RelationInfo) -> int:
        if info.kind == "function":
            return max(1, info.estimated_rows)
        assert info.table is not None
        selectivities = []
        for conjunct in info.local_conjuncts:
            sargable = extract_sargable(conjunct)
            if sargable is not None and sargable.is_equality:
                selectivities.append(self.EQUALITY_SELECTIVITY)
            elif sargable is not None:
                selectivities.append(self.RANGE_SELECTIVITY)
            else:
                selectivities.append(self.RESIDUAL_SELECTIVITY)
        estimate = (float(max(1, info.table.row_count))
                    * self._combine_selectivities(selectivities))
        return max(1, int(estimate))

    # -- access paths ------------------------------------------------------------

    def _needed_columns(self, query: LogicalQuery, info: _RelationInfo,
                        relations: Sequence[_RelationInfo]) -> Optional[set[str]]:
        """Columns of ``info`` referenced anywhere in the query.

        Returns None when a bare ``*`` (or ``alias.*``) forces the full row.
        """
        needed: set[str] = set()
        expressions: list[Expression] = [item.expression for item in query.select]
        if query.where is not None:
            expressions.append(query.where)
        for join in query.joins:
            if join.condition is not None:
                expressions.append(join.condition)
        expressions.extend(order.expression for order in query.order_by)
        expressions.extend(query.group_by)
        if query.having is not None:
            expressions.append(query.having)
        expressions.extend(info.local_conjuncts)
        others = [other for other in relations if other.binding_name != info.binding_name]
        for expression in expressions:
            if isinstance(expression, Star):
                if expression.qualifier is None or expression.qualifier.lower() == info.binding_name:
                    return None
                continue
            for qualifier, column in expression.referenced_columns():
                if qualifier == info.binding_name:
                    needed.add(column)
                elif qualifier is None and self._relation_has_column(info, column):
                    uniquely_mine = not any(self._relation_has_column(other, column)
                                            for other in others)
                    if uniquely_mine or True:
                        needed.add(column)
        return needed

    def _split_sargables(self, info: _RelationInfo
                         ) -> tuple[dict[str, SargablePredicate], list[Expression]]:
        """Partition the local conjuncts into sargables-by-column and the rest."""
        sargables: dict[str, SargablePredicate] = {}
        non_sargable: list[Expression] = []
        for conjunct in info.local_conjuncts:
            sargable = extract_sargable(conjunct)
            if sargable is not None and (sargable.qualifier is None
                                         or sargable.qualifier == info.binding_name):
                # Keep the most selective predicate per column (equality wins).
                existing = sargables.get(sargable.column)
                if existing is None or (sargable.is_equality and not existing.is_equality):
                    if existing is not None:
                        non_sargable.append(existing.source)
                    sargables[sargable.column] = sargable
                else:
                    non_sargable.append(conjunct)
            else:
                non_sargable.append(conjunct)
        return sargables, non_sargable

    @staticmethod
    def _best_seek_index(table: Table, sargables: dict[str, SargablePredicate]
                         ) -> tuple[Optional[BTreeIndex], list[SargablePredicate]]:
        """The index whose key prefix matches the most sargable predicates."""
        best_index: Optional[BTreeIndex] = None
        best_prefix: list[SargablePredicate] = []
        for index in table.indexes.values():
            prefix: list[SargablePredicate] = []
            for column in index.columns:
                sargable = sargables.get(column)
                if sargable is None:
                    break
                prefix.append(sargable)
                if not sargable.is_equality:
                    break
            if prefix and len(prefix) > len(best_prefix):
                best_index, best_prefix = index, prefix
        return best_index, best_prefix

    def _build_index_seek(self, info: _RelationInfo, table: Table,
                          best_index: BTreeIndex,
                          best_prefix: Sequence[SargablePredicate],
                          sargables: dict[str, SargablePredicate],
                          non_sargable: Sequence[Expression],
                          needed: Optional[set[str]], *,
                          estimated: int) -> IndexRangeScan:
        """Assemble the seek operator both access-path planners build."""
        used = {sargable.column for sargable in best_prefix}
        residual_parts = list(non_sargable) + [
            sargable.source for column, sargable in sargables.items()
            if column not in used]
        residual = combine_conjuncts(
            [qualify_columns(part, info.binding_name, table)
             for part in residual_parts])
        low = [s.low for s in best_prefix if s.low is not None]
        high = [s.high for s in best_prefix if s.high is not None]
        covering = needed is not None and best_index.covers(needed)
        return IndexRangeScan(best_index, info.binding_name,
                              low if low else None, high if high else None,
                              predicate=residual, estimated=estimated,
                              covering=covering)

    def _access_path(self, info: _RelationInfo, query: LogicalQuery,
                     relations: Sequence[_RelationInfo]) -> _PlannedAccessPath:
        if info.kind == "function":
            function = self.database.functions.table_valued(info.function_name)
            operator = FunctionScan(function, list(info.function_args), info.binding_name)
            return _PlannedAccessPath(operator, max(1, function.row_estimate))
        assert info.table is not None
        table = info.table
        sargables, non_sargable = self._split_sargables(info)
        best_index, best_prefix = self._best_seek_index(table, sargables)
        needed = self._needed_columns(query, info, relations)

        if best_index is not None and best_prefix:
            estimate = self._estimate_index_rows(table, best_index, best_prefix)
            operator = self._build_index_seek(info, table, best_index, best_prefix,
                                              sargables, non_sargable, needed,
                                              estimated=estimate)
            return _PlannedAccessPath(operator, estimate)

        predicate = combine_conjuncts(
            [qualify_columns(part, info.binding_name, table)
             for part in info.local_conjuncts])
        if needed is not None:
            for index in table.indexes.values():
                if index.covers(needed):
                    operator = CoveringIndexScan(index, info.binding_name, predicate)
                    return _PlannedAccessPath(operator, self._estimate_relation(info))
        operator = TableScan(table, info.binding_name, predicate)
        return _PlannedAccessPath(operator, self._estimate_relation(info))

    def _estimate_index_rows(self, table: Table, index: BTreeIndex,
                             prefix: Sequence[SargablePredicate]) -> int:
        full_unique = (index.unique and len(prefix) == len(index.columns)
                       and all(s.is_equality for s in prefix))
        if full_unique:
            return 1
        selectivities = [self.EQUALITY_SELECTIVITY if sargable.is_equality
                         else self.RANGE_SELECTIVITY for sargable in prefix]
        estimate = (float(max(1, table.row_count))
                    * self._combine_selectivities(selectivities))
        return max(1, int(estimate))

    # -- the cost-based optimizer -------------------------------------------------

    def _constant_value(self, expression: Optional[Expression]) -> Any:
        """Fold a bound expression to a plan-time constant, or ``_UNKNOWN``.

        Session variables are not bound at plan time and impure
        functions may raise; any failure simply means the histogram
        cannot be consulted and the fixed constants apply.
        """
        if expression is None:
            return None
        if isinstance(expression, Literal):
            value = expression.value
            return _UNKNOWN if value is NULL else value
        try:
            from .expressions import RowScope
            value = expression.evaluate(RowScope(), self.database.evaluation_context())
        except Exception:
            return _UNKNOWN
        return _UNKNOWN if value is NULL else value

    def _sargable_selectivity(self, statistics: Optional[TableStatistics],
                              sargable: SargablePredicate) -> float:
        column_stats = (statistics.column(sargable.column)
                        if statistics is not None else None)
        if sargable.is_equality:
            value = self._constant_value(sargable.low)
            if column_stats is not None and value is not _UNKNOWN:
                selectivity = column_stats.equality_selectivity(value)
                if selectivity is not None:
                    return selectivity
            return self.EQUALITY_SELECTIVITY
        low = self._constant_value(sargable.low)
        high = self._constant_value(sargable.high)
        if column_stats is not None and low is not _UNKNOWN and high is not _UNKNOWN:
            selectivity = column_stats.range_selectivity(low, high)
            if selectivity is not None:
                return selectivity
        return self.RANGE_SELECTIVITY

    def _conjunct_selectivity(self, statistics: Optional[TableStatistics],
                              conjunct: Expression) -> float:
        sargable = extract_sargable(conjunct)
        if sargable is None:
            return self.RESIDUAL_SELECTIVITY
        return self._sargable_selectivity(statistics, sargable)

    def _estimate_relation_cbo(self, info: _RelationInfo) -> int:
        """Statistics-backed output cardinality of one FROM-clause relation.

        A cardinality-feedback override (the row count actually observed
        for this binding on a previous execution of the same statement)
        wins over the selectivity model outright.
        """
        override = self._overrides.get(info.binding_name.lower())
        if override is not None:
            return override
        if info.kind == "function":
            return max(1, info.estimated_rows)
        assert info.table is not None
        statistics = self.database.table_statistics(info.table.name)
        selectivities = [self._conjunct_selectivity(statistics, conjunct)
                         for conjunct in info.local_conjuncts]
        estimate = (float(max(1, info.table.row_count))
                    * self._combine_selectivities(selectivities))
        return max(1, int(estimate))

    def _access_path_cbo(self, info: _RelationInfo, query: LogicalQuery,
                         relations: Sequence[_RelationInfo]) -> _PlannedAccessPath:
        """Cheapest access path among table scan, covering scan and index seek."""
        if info.kind == "function":
            function = self.database.functions.table_valued(info.function_name)
            operator = FunctionScan(function, list(info.function_args),
                                    info.binding_name)
            rows = max(1, function.row_estimate)
            operator.set_estimates(rows, float(rows))
            return _PlannedAccessPath(operator, rows, float(rows))
        assert info.table is not None
        table = info.table
        statistics = self.database.table_statistics(table.name)
        total = max(1, table.row_count)
        row_bytes = max(1.0, table.average_row_bytes())
        estimated_out = self._estimate_relation_cbo(info)
        sargables, non_sargable = self._split_sargables(info)
        needed = self._needed_columns(query, info, relations)

        # (cost, tie-break priority, operator, output rows)
        candidates: list[tuple[float, int, PhysicalOperator, int]] = []

        best_index, best_prefix = self._best_seek_index(table, sargables)
        if best_index is not None and best_prefix:
            full_unique = (best_index.unique
                           and len(best_prefix) == len(best_index.columns)
                           and all(s.is_equality for s in best_prefix))
            if full_unique:
                fetched = 1
            else:
                prefix_selectivity = self._combine_selectivities(
                    [self._sargable_selectivity(statistics, s) for s in best_prefix])
                fetched = max(1, int(total * prefix_selectivity))
            rows = min(estimated_out, fetched)
            seek = self._build_index_seek(info, table, best_index, best_prefix,
                                          sargables, non_sargable, needed,
                                          estimated=rows)
            per_row = (self.INDEX_ENTRY_COST if seek.covering
                       else self.RANDOM_LOOKUP_COST)
            cost = math.log2(total + 1) + fetched * per_row
            candidates.append((cost, 0, seek, rows))

        predicate = combine_conjuncts(
            [qualify_columns(part, info.binding_name, table)
             for part in info.local_conjuncts])
        # A covering index's only scan advantage is reading narrow
        # entries instead of wide rows; a column store already reads
        # just the referenced buffers — and a TableScan there keeps the
        # vectorized batch pipeline applicable — so the covering
        # candidate only exists for row-backed tables.
        if needed is not None and table.storage.kind != "column":
            covering_indexes = [index for index in table.indexes.values()
                                if index.covers(needed)]
            if covering_indexes:
                narrow = min(covering_indexes,
                             key=lambda index: index.entry_byte_width())
                ratio = min(1.0, max(0.05, narrow.entry_byte_width() / row_bytes))
                scan = CoveringIndexScan(narrow, info.binding_name, predicate)
                candidates.append((total * self.SEQ_ROW_COST * ratio, 1,
                                   scan, estimated_out))
        candidates.append((total * self.SEQ_ROW_COST, 2,
                           TableScan(table, info.binding_name, predicate),
                           estimated_out))

        cost, _priority, operator, rows = min(candidates,
                                              key=lambda item: (item[0], item[1]))
        operator.set_estimates(rows, cost)
        return _PlannedAccessPath(operator, rows, cost)

    def _index_join_candidate(self, info: _RelationInfo,
                              equalities: Sequence[tuple[Expression, Expression,
                                                         Expression]]
                              ) -> Optional[tuple[BTreeIndex, list[str],
                                                  dict[str, tuple[Expression,
                                                                  Expression,
                                                                  Expression]]]]:
        """The index/prefix an index nested-loop join would probe, if any.

        Shared by the cost-based enumeration (for costing) and
        :meth:`_index_join` (for construction), so the plan that is
        costed is exactly the plan that is built.
        """
        assert info.table is not None
        by_column: dict[str, tuple[Expression, Expression, Expression]] = {}
        for conjunct, new_side, old_side in equalities:
            if isinstance(new_side, ColumnRef):
                by_column[new_side.name.lower()] = (conjunct, new_side, old_side)
        best_index: Optional[BTreeIndex] = None
        best_prefix: list[str] = []
        for index in info.table.indexes.values():
            prefix = []
            for column in index.columns:
                if column in by_column:
                    prefix.append(column)
                else:
                    break
            if prefix and len(prefix) > len(best_prefix):
                best_index, best_prefix = index, prefix
        if best_index is None:
            return None
        return best_index, best_prefix, by_column

    def _index_probe_matches(self, table: Table, index: BTreeIndex,
                             prefix_columns: Sequence[str]) -> float:
        """Expected inner rows fetched per outer probe of an index join."""
        if index.unique and len(prefix_columns) == len(index.columns):
            return 1.0
        statistics = self.database.table_statistics(table.name)
        selectivities = []
        for column in prefix_columns:
            distinct = 0
            if statistics is not None:
                column_stats = statistics.column(column)
                if column_stats is not None:
                    distinct = column_stats.distinct_count
            selectivities.append(1.0 / distinct if distinct > 0
                                 else self.EQUALITY_SELECTIVITY)
        matches = max(1, table.row_count) * self._combine_selectivities(selectivities)
        return max(1.0, matches)

    def _expression_distinct(self, expression: Expression,
                             by_name: dict[str, _RelationInfo]) -> int:
        """Distinct-count estimate of a join-key expression (0 = unknown)."""
        if not isinstance(expression, ColumnRef):
            return 0
        if expression.qualifier is not None:
            owner = by_name.get(expression.qualifier)
        else:
            owners = [info for info in by_name.values()
                      if self._relation_has_column(info, expression.name)]
            owner = owners[0] if len(owners) == 1 else None
        if owner is None or owner.kind != "table" or owner.table is None:
            return 0
        statistics = self.database.table_statistics(owner.table.name)
        if statistics is None:
            return 0
        column_stats = statistics.column(expression.name)
        return column_stats.distinct_count if column_stats is not None else 0

    def _join_output_estimate(self, left_rows: int, right_rows: int,
                              equalities: Sequence[tuple[Expression, Expression,
                                                         Expression]],
                              by_name: dict[str, _RelationInfo]) -> int:
        """Equi-join cardinality: |L| * |R| / max(distinct) per key pair."""
        selectivities: list[Optional[float]] = []
        for _conjunct, new_side, old_side in equalities:
            distinct_new = self._expression_distinct(new_side, by_name)
            distinct_old = self._expression_distinct(old_side, by_name)
            distinct = max(distinct_new, distinct_old)
            selectivities.append(1.0 / distinct if distinct > 0 else None)
        if any(selectivity is None for selectivity in selectivities):
            # No distinct statistics: keep the pre-CBO heuristic.
            return max(1, left_rows, right_rows)
        estimate = float(left_rows) * float(right_rows)
        for selectivity in selectivities:
            estimate *= selectivity
        return max(1, int(estimate))

    def _plan_joins_cbo(self, relations: list[_RelationInfo],
                        pool: "_PredicatePool", query: LogicalQuery
                        ) -> tuple[PhysicalOperator, set[str]]:
        """Greedy cost-ordered join enumeration.

        Starts from the relation with the smallest estimated
        cardinality (for Query 1 this keeps the spatial TVF on the
        outer side, as in Figure 10), then repeatedly attaches the
        (relation, strategy) pair with the lowest total cost among
        index nested-loop, hash (smaller side builds) and nested-loop
        joins, preferring connected relations over cross products.
        """
        by_name = {info.binding_name: info for info in relations}
        paths = {info.binding_name: self._access_path_cbo(info, query, relations)
                 for info in relations}
        start = min(relations,
                    key=lambda info: (paths[info.binding_name].estimated_rows,
                                      paths[info.binding_name].cost,
                                      info.binding_name))
        path = paths[start.binding_name]
        root: PhysicalOperator = path.operator
        root_rows = path.estimated_rows
        root_cost = path.cost
        planned = {start.binding_name}
        unplanned = {info.binding_name for info in relations} - planned

        while unplanned:
            best: Optional[tuple] = None
            for name in sorted(unplanned):
                info = by_name[name]
                inner_path = paths[name]
                join_conjuncts = self._join_conjuncts(name, planned, by_name, pool)
                equalities = [self._join_equality(conjunct, name, by_name)
                              for conjunct in join_conjuncts]
                equalities = [pair for pair in equalities if pair is not None]
                connected = 0 if join_conjuncts else 1
                statistics = (self.database.table_statistics(info.table.name)
                              if info.kind == "table" else None)

                options: list[tuple[float, int, tuple, int]] = []
                if self.enable_index_join and info.kind == "table" and equalities:
                    candidate = self._index_join_candidate(info, equalities)
                    if candidate is not None:
                        index, prefix_columns, _by_column = candidate
                        matches = self._index_probe_matches(info.table, index,
                                                            prefix_columns)
                        local_selectivity = self._combine_selectivities(
                            [self._conjunct_selectivity(statistics, conjunct)
                             for conjunct in info.local_conjuncts])
                        cost = root_cost + root_rows * (
                            math.log2(max(2, info.table.row_count))
                            + matches * self.RANDOM_LOOKUP_COST)
                        rows = max(1, int(root_rows * matches * local_selectivity))
                        options.append((cost, 0, ("index", candidate), rows))
                if (self.enable_sort_merge and len(equalities) == 1
                        and self._merge_join_applicable(root, info,
                                                        inner_path.operator,
                                                        equalities[0])):
                    rows = self._join_output_estimate(root_rows,
                                                      inner_path.estimated_rows,
                                                      equalities, by_name)
                    build_new = inner_path.estimated_rows <= root_rows
                    cost = (root_cost + inner_path.cost
                            + (root_rows + inner_path.estimated_rows)
                            * self.MERGE_ROW_COST)
                    options.append((cost, 1, ("merge", build_new), rows))
                if equalities and self.enable_hash_join:
                    rows = self._join_output_estimate(root_rows,
                                                      inner_path.estimated_rows,
                                                      equalities, by_name)
                    build_new = inner_path.estimated_rows <= root_rows
                    build_rows = (inner_path.estimated_rows if build_new
                                  else root_rows)
                    probe_rows = (root_rows if build_new
                                  else inner_path.estimated_rows)
                    cost = (root_cost + inner_path.cost
                            + build_rows * self.HASH_BUILD_COST
                            + probe_rows * self.HASH_PROBE_COST)
                    options.append((cost, 2, ("hash", build_new), rows))
                nested_cost = (root_cost
                               + max(1, root_rows) * max(1.0, inner_path.cost))
                nested_rows = max(1, int(
                    root_rows * inner_path.estimated_rows
                    * self._combine_selectivities(
                        [self.RESIDUAL_SELECTIVITY] * len(join_conjuncts))))
                options.append((nested_cost, 3, ("nested", None), nested_rows))

                for cost, priority, choice, rows in options:
                    key = (connected, cost, priority, name)
                    if best is None or key < best[0]:
                        best = (key, name, choice, rows, cost,
                                join_conjuncts, equalities)

            assert best is not None
            _key, name, choice, rows, cost, join_conjuncts, equalities = best
            info = by_name[name]
            inner_path = paths[name]
            kind, extra = choice
            if kind == "index":
                built = self._index_join(root, info, equalities, join_conjuncts,
                                         candidate=extra)
                assert built is not None
                root, used_conjuncts = built
                pool.remaining = [c for c in pool.remaining
                                  if c not in used_conjuncts]
            elif kind == "merge":
                root = self._build_merge_join(root, inner_path.operator,
                                              equalities, join_conjuncts,
                                              build_new=extra)
                pool.remaining = [c for c in pool.remaining
                                  if c not in join_conjuncts]
            elif kind == "hash":
                root = self._build_hash_join(root, inner_path.operator,
                                             equalities, join_conjuncts,
                                             build_new=extra)
                pool.remaining = [c for c in pool.remaining
                                  if c not in join_conjuncts]
            else:
                residual = combine_conjuncts(join_conjuncts)
                root = NestedLoopJoin(root, inner_path.operator, residual)
                pool.remaining = [c for c in pool.remaining
                                  if c not in join_conjuncts]
            root.set_estimates(rows, cost)
            root_rows = max(1, rows)
            root_cost = cost
            planned.add(name)
            unplanned.discard(name)
        return root, planned

    def _plan_joins_dp(self, relations: list[_RelationInfo],
                       pool: "_PredicatePool", query: LogicalQuery
                       ) -> tuple[PhysicalOperator, set[str]]:
        """Bushy dynamic-programming join enumeration (DPsize).

        Costs every subset of the FROM clause bottom-up: a subset's
        best plan is the cheapest (left, right) split of it, where each
        split is costed with exactly the option block of
        :meth:`_plan_joins_cbo` — index nested-loop (right side a
        single base table), sort-merge (both sides single tables), hash
        (smaller side builds) and nested-loop — and connected splits
        (ones joined by an applicable conjunct) are preferred over
        cross products just as the greedy loop prefers connected
        relations.  Unlike the greedy loop, the left side may itself be
        any subtree, so bushy plans fall out for free.

        The enumeration only records decisions; the physical tree is
        reconstructed afterwards so each predicate-pool conjunct is
        consumed exactly once, at the split that owns it.  The caller
        falls back to :meth:`_plan_joins_cbo` above
        :data:`DP_RELATION_LIMIT` relations (DPsize is exponential in
        the relation count).
        """
        by_name = {info.binding_name: info for info in relations}
        paths = {info.binding_name: self._access_path_cbo(info, query, relations)
                 for info in relations}
        names = sorted(by_name)

        #: frozenset of bindings -> (rows, cost, decision); decision is
        #: None for singletons, else (left, right, kind, extra,
        #: join_conjuncts, equalities).
        table: dict[frozenset, tuple[int, float, Optional[tuple]]] = {}
        for name in names:
            path = paths[name]
            table[frozenset((name,))] = (path.estimated_rows, path.cost, None)

        def applicable_conjuncts(left: frozenset, right: frozenset
                                 ) -> list[Expression]:
            both = left | right
            found = []
            for conjunct in pool.remaining:
                aliases = self._conjunct_aliases(conjunct, by_name)
                if aliases and aliases <= both and aliases & left and aliases & right:
                    found.append(conjunct)
            return found

        for size in range(2, len(names) + 1):
            for subset in itertools.combinations(names, size):
                members = frozenset(subset)
                best: Optional[tuple] = None
                # Every ordered split: left drives/probes, right is the
                # newly attached side (the greedy loop's "inner").
                for left in _proper_subsets(subset):
                    right = members - left
                    left_rows, left_cost, _d = table[left]
                    right_rows, right_cost, _d = table[right]
                    join_conjuncts = applicable_conjuncts(left, right)
                    equalities = [
                        self._join_equality_sets(conjunct, left, right, by_name)
                        for conjunct in join_conjuncts]
                    equalities = [pair for pair in equalities if pair is not None]
                    connected = 0 if join_conjuncts else 1
                    right_name = min(right) if len(right) == 1 else None
                    info = by_name[right_name] if right_name else None

                    options: list[tuple[float, int, tuple, int]] = []
                    if (self.enable_index_join and info is not None
                            and info.kind == "table" and equalities):
                        candidate = self._index_join_candidate(info, equalities)
                        if candidate is not None:
                            index, prefix_columns, _by_column = candidate
                            statistics = self.database.table_statistics(
                                info.table.name)
                            matches = self._index_probe_matches(
                                info.table, index, prefix_columns)
                            local_selectivity = self._combine_selectivities(
                                [self._conjunct_selectivity(statistics, conjunct)
                                 for conjunct in info.local_conjuncts])
                            cost = left_cost + left_rows * (
                                math.log2(max(2, info.table.row_count))
                                + matches * self.RANDOM_LOOKUP_COST)
                            rows = max(1, int(left_rows * matches
                                              * local_selectivity))
                            options.append((cost, 0, ("index", candidate), rows))
                    if (self.enable_sort_merge and len(equalities) == 1
                            and len(left) == 1 and info is not None
                            and self._merge_join_applicable(
                                paths[min(left)].operator, info,
                                paths[right_name].operator, equalities[0])):
                        rows = self._join_output_estimate(left_rows, right_rows,
                                                          equalities, by_name)
                        build_new = right_rows <= left_rows
                        cost = (left_cost + right_cost
                                + (left_rows + right_rows) * self.MERGE_ROW_COST)
                        options.append((cost, 1, ("merge", build_new), rows))
                    if equalities and self.enable_hash_join:
                        rows = self._join_output_estimate(left_rows, right_rows,
                                                          equalities, by_name)
                        build_new = right_rows <= left_rows
                        build_rows = right_rows if build_new else left_rows
                        probe_rows = left_rows if build_new else right_rows
                        cost = (left_cost + right_cost
                                + build_rows * self.HASH_BUILD_COST
                                + probe_rows * self.HASH_PROBE_COST)
                        options.append((cost, 2, ("hash", build_new), rows))
                    nested_cost = (left_cost
                                   + max(1, left_rows) * max(1.0, right_cost))
                    nested_rows = max(1, int(
                        left_rows * right_rows * self._combine_selectivities(
                            [self.RESIDUAL_SELECTIVITY] * len(join_conjuncts))))
                    options.append((nested_cost, 3, ("nested", None),
                                    nested_rows))

                    for cost, priority, choice, rows in options:
                        key = (connected, cost, priority, tuple(sorted(right)),
                               tuple(sorted(left)))
                        if best is None or key < best[0]:
                            best = (key, left, right, choice, rows, cost,
                                    join_conjuncts, equalities)

                assert best is not None
                _key, left, right, choice, rows, cost, conjuncts, eqs = best
                table[members] = (rows, cost,
                                  (left, right, choice, conjuncts, eqs))

        def build(members: frozenset) -> PhysicalOperator:
            rows, cost, decision = table[members]
            if decision is None:
                return paths[min(members)].operator
            left, right, (kind, extra), join_conjuncts, equalities = decision
            root = build(left)
            if kind == "index":
                built = self._index_join(root, by_name[min(right)], equalities,
                                         join_conjuncts, candidate=extra)
                assert built is not None
                root, used_conjuncts = built
                pool.remaining = [c for c in pool.remaining
                                  if c not in used_conjuncts]
            elif kind == "merge":
                root = self._build_merge_join(root, paths[min(right)].operator,
                                              equalities, join_conjuncts,
                                              build_new=extra)
                pool.remaining = [c for c in pool.remaining
                                  if c not in join_conjuncts]
            elif kind == "hash":
                root = self._build_hash_join(root, build(right), equalities,
                                             join_conjuncts, build_new=extra)
                pool.remaining = [c for c in pool.remaining
                                  if c not in join_conjuncts]
            else:
                residual = combine_conjuncts(join_conjuncts)
                root = NestedLoopJoin(root, build(right), residual)
                pool.remaining = [c for c in pool.remaining
                                  if c not in join_conjuncts]
            root.set_estimates(rows, cost)
            return root

        return build(frozenset(names)), set(names)

    def _join_equality_sets(self, conjunct: Expression, left: frozenset,
                            right: frozenset,
                            by_name: dict[str, _RelationInfo]
                            ) -> Optional[tuple[Expression, Expression,
                                                Expression]]:
        """Set-sided :meth:`_join_equality`: ``old(left) = new(right)``.

        Recognises an equality whose two sides reference opposite halves
        of a DP split; the returned triple matches
        :meth:`_build_hash_join`'s (conjunct, new_side, old_side) shape,
        with *new* on the right (attached) half.
        """
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            return None
        left_aliases = self._conjunct_aliases(conjunct.left, by_name)
        right_aliases = self._conjunct_aliases(conjunct.right, by_name)
        if not left_aliases or not right_aliases:
            return None
        if left_aliases <= right and right_aliases <= left:
            return (conjunct, conjunct.left, conjunct.right)
        if right_aliases <= right and left_aliases <= left:
            return (conjunct, conjunct.right, conjunct.left)
        return None

    # -- join planning ---------------------------------------------------------------

    def _plan_joins(self, relations: list[_RelationInfo], pool: "_PredicatePool",
                    query: LogicalQuery) -> tuple[PhysicalOperator, set[str]]:
        by_name = {info.binding_name: info for info in relations}
        unplanned = {info.binding_name for info in relations}
        # Start from the relation with the smallest estimated cardinality —
        # for Query 1 this puts the spatial TVF on the outer side, as in Figure 10.
        start = min(relations, key=lambda info: info.estimated_rows)
        path = self._access_path(start, query, relations)
        root: PhysicalOperator = path.operator
        root_estimate = path.estimated_rows
        planned = {start.binding_name}
        unplanned.discard(start.binding_name)

        while unplanned:
            choice = self._choose_next_relation(planned, unplanned, by_name, pool)
            info = by_name[choice]
            join_conjuncts = self._join_conjuncts(choice, planned, by_name, pool)
            equalities = [self._join_equality(conjunct, choice, by_name)
                          for conjunct in join_conjuncts]
            equalities = [pair for pair in equalities if pair is not None]

            index_plan = None
            if self.enable_index_join and info.kind == "table" and equalities:
                index_plan = self._index_join(root, info, equalities, join_conjuncts)
            if index_plan is not None:
                root, used_conjuncts = index_plan
                root_estimate = max(root_estimate, info.estimated_rows)
                pool.remaining = [c for c in pool.remaining if c not in used_conjuncts]
            elif equalities and self.enable_hash_join:
                inner_path = self._access_path(info, query, relations)
                root = self._build_hash_join(root, inner_path.operator,
                                             equalities, join_conjuncts)
                root_estimate = max(root_estimate, inner_path.estimated_rows)
                pool.remaining = [c for c in pool.remaining if c not in join_conjuncts]
            else:
                inner_path = self._access_path(info, query, relations)
                residual = combine_conjuncts(join_conjuncts)
                root = NestedLoopJoin(root, inner_path.operator, residual)
                root_estimate *= max(1, inner_path.estimated_rows)
                pool.remaining = [c for c in pool.remaining if c not in join_conjuncts]
            planned.add(choice)
            unplanned.discard(choice)
        return root, planned

    def _choose_next_relation(self, planned: set[str], unplanned: set[str],
                              by_name: dict[str, _RelationInfo],
                              pool: "_PredicatePool") -> str:
        scored: list[tuple[int, int, str]] = []
        for name in unplanned:
            join_conjuncts = self._join_conjuncts(name, planned, by_name, pool)
            has_equality = any(self._join_equality(conjunct, name, by_name) is not None
                               for conjunct in join_conjuncts)
            connected = 0 if has_equality else (1 if join_conjuncts else 2)
            scored.append((connected, by_name[name].estimated_rows, name))
        scored.sort()
        return scored[0][2]

    def _join_conjuncts(self, name: str, planned: set[str],
                        by_name: dict[str, _RelationInfo],
                        pool: "_PredicatePool") -> list[Expression]:
        found = []
        for conjunct in pool.remaining:
            aliases = self._conjunct_aliases(conjunct, by_name)
            if name in aliases and aliases <= planned | {name}:
                found.append(conjunct)
        return found

    def _join_equality(self, conjunct: Expression, new_name: str,
                       by_name: dict[str, _RelationInfo]
                       ) -> Optional[tuple[Expression, Expression, Expression]]:
        """Recognise ``new.col = old_expr``; returns (conjunct, new_side, old_side)."""
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            return None
        left_aliases = self._conjunct_aliases(conjunct.left, by_name)
        right_aliases = self._conjunct_aliases(conjunct.right, by_name)
        if left_aliases == {new_name} and new_name not in right_aliases:
            return (conjunct, conjunct.left, conjunct.right)
        if right_aliases == {new_name} and new_name not in left_aliases:
            return (conjunct, conjunct.right, conjunct.left)
        return None

    def _build_hash_join(self, root: PhysicalOperator,
                         inner_operator: PhysicalOperator,
                         equalities: Sequence[tuple[Expression, Expression,
                                                    Expression]],
                         join_conjuncts: Sequence[Expression],
                         build_new: bool = True) -> HashJoin:
        """Construct the hash join both enumerators agreed on.

        ``build_new=True`` builds on the newly attached relation (the
        heuristic planner's fixed choice); the CBO passes False when
        the already-joined pipeline is the smaller input.
        """
        new_keys = [new for (_conjunct, new, _old) in equalities]
        old_keys = [old for (_conjunct, _new, old) in equalities]
        equality_conjuncts = [conjunct for conjunct, _new, _old in equalities]
        residual = combine_conjuncts([conjunct for conjunct in join_conjuncts
                                      if conjunct not in equality_conjuncts])
        if build_new:
            return HashJoin(inner_operator, root, new_keys, old_keys, residual)
        return HashJoin(root, inner_operator, old_keys, new_keys, residual)

    # -- sort-merge join planning -----------------------------------------------

    def _merge_join_applicable(self, root: PhysicalOperator,
                               info: _RelationInfo,
                               inner_operator: PhysicalOperator,
                               equality: tuple[Expression, Expression,
                                               Expression]) -> bool:
        """True when ``root ⋈ info`` qualifies for a sort-merge join.

        The merge operator never sorts — it *verifies* that both inputs
        are base-table scans whose key column is stored in ascending
        order with no NULLs (the objID-ordered co-partitioned case the
        survey loader produces).  Anything else — index paths, joined
        pipelines, unsorted or nullable keys — falls back to the hash
        and nested-loop options.
        """
        _conjunct, new_side, old_side = equality
        if not (isinstance(new_side, ColumnRef) and isinstance(old_side, ColumnRef)):
            return False
        if not isinstance(root, TableScan) or not isinstance(inner_operator, TableScan):
            return False
        old_qualifier = (old_side.qualifier or "").lower()
        if old_qualifier and old_qualifier != root.binding_name.lower():
            return False
        if not root.table.has_column(old_side.name):
            return False
        new_qualifier = (new_side.qualifier or "").lower()
        if new_qualifier and new_qualifier != info.binding_name.lower():
            return False
        assert info.table is not None
        if not info.table.has_column(new_side.name):
            return False
        return (self._table_sorted(root.table, old_side.name)
                and self._table_sorted(info.table, new_side.name))

    def _table_sorted(self, table: Table, column_name: str) -> bool:
        """Verified "stored in ascending ``column_name`` order, no NULLs".

        The verification scan is O(rows) but cached per (table, column)
        and keyed by the table's modification counter, so it reruns only
        after DML — the planner's usual amortisation argument.
        """
        key = (table.name.lower(), column_name.lower())
        version = table.modification_counter
        cached = self._sorted_cache.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        column = table.column(column_name)
        sorted_ok = column is not None and column.dtype in _MERGE_KEY_TYPES
        if sorted_ok:
            name = column_name.lower()
            previous: Any = None
            for row in table.storage.iter_dicts():
                value = row.get(name, NULL)
                if value is NULL or (previous is not None and value < previous):
                    sorted_ok = False
                    break
                previous = value
        self._sorted_cache[key] = (version, sorted_ok)
        return sorted_ok

    def _build_merge_join(self, root: PhysicalOperator,
                          inner_operator: PhysicalOperator,
                          equalities: Sequence[tuple[Expression, Expression,
                                                     Expression]],
                          join_conjuncts: Sequence[Expression],
                          build_new: bool = True) -> SortMergeJoin:
        """Construct the sort-merge join the CBO costed.

        Mirrors :meth:`_build_hash_join`'s side assignment so the
        emission order (probe-major, matches in build order) lines up
        with what the hash join would have produced.
        """
        new_keys = [new for (_conjunct, new, _old) in equalities]
        old_keys = [old for (_conjunct, _new, old) in equalities]
        equality_conjuncts = [conjunct for conjunct, _new, _old in equalities]
        residual = combine_conjuncts([conjunct for conjunct in join_conjuncts
                                      if conjunct not in equality_conjuncts])
        if build_new:
            return SortMergeJoin(inner_operator, root, new_keys, old_keys,
                                 residual)
        return SortMergeJoin(root, inner_operator, old_keys, new_keys,
                             residual)

    def _index_join(self, outer: PhysicalOperator, info: _RelationInfo,
                    equalities: Sequence[tuple[Expression, Expression, Expression]],
                    join_conjuncts: Sequence[Expression],
                    candidate: Optional[tuple] = None
                    ) -> Optional[tuple[PhysicalOperator, list[Expression]]]:
        """Try to turn the join into an index nested-loop join probing ``info``.

        ``candidate`` is a precomputed :meth:`_index_join_candidate`
        result (the CBO passes the one it costed); when omitted it is
        derived here.
        """
        assert info.table is not None
        table = info.table
        if candidate is None:
            candidate = self._index_join_candidate(info, equalities)
        if candidate is None:
            return None
        best_index, best_prefix, by_column = candidate
        outer_key = [by_column[column][2] for column in best_prefix]
        used = [by_column[column][0] for column in best_prefix]
        residual_parts = [conjunct for conjunct in join_conjuncts if conjunct not in used]
        residual_parts.extend(qualify_columns(part, info.binding_name, table)
                              for part in info.local_conjuncts)
        residual = combine_conjuncts(residual_parts)
        operator = IndexNestedLoopJoin(outer, table, info.binding_name, best_index,
                                       outer_key, residual)
        return operator, list(join_conjuncts)

    # -- finishing touches ----------------------------------------------------------

    def _finish_plan(self, root: PhysicalOperator, query: LogicalQuery,
                     relations: Sequence[_RelationInfo]) -> PhysicalPlan:
        aggregates: list[AggregateCall] = []
        for item in query.select:
            aggregates.extend(collect_aggregates(item.expression))
        if query.having is not None:
            aggregates.extend(collect_aggregates(query.having))
        if aggregates or query.group_by:
            root = GroupAggregate(root, list(query.group_by), aggregates)
            if query.having is not None:
                root = FilterOp(root, query.having)

        if query.order_by:
            keys = [(self._rewrite_order_key(order.expression, query), order.descending)
                    for order in query.order_by]
            root = SortOp(root, keys)

        root = ProjectOp(root, query.select, self.database,
                         allow_fused=self.enable_fusion)
        if query.distinct:
            root = DistinctOp(root)
        if query.top is not None:
            root = TopOp(root, query.top)
        if query.into:
            root = InsertIntoOp(root, query.into, self.database)

        if self.enable_vectorized:
            self._mark_vectorized_pipeline(root)
            if self.parallelism > 1:
                self._mark_parallel(root, relations)
        self._mark_zone_maps(root, relations)
        if self.enable_cbo:
            self._propagate_costs(root)
        return PhysicalPlan(root=root, output_names=query.output_names(),
                            database=self.database,
                            parallelism=self.parallelism,
                            simulated_scan_mbps=self.simulated_scan_mbps)

    # -- zone-map marking ----------------------------------------------------------

    def _mark_zone_maps(self, root: PhysicalOperator,
                        relations: Sequence[_RelationInfo]) -> None:
        """Stamp the plan's zone-map flags.

        Every base-table scan gets this planner's :attr:`enable_zone_maps`
        toggle (skipping is always safe — zone maps are conservative).
        Scalar aggregates additionally get :attr:`GroupAggregate.
        zone_exact_sums` when the CBO's exact-integer proof
        (:meth:`_sum_stays_exact` — the same machinery that picks the
        parallel partial-merge mode) covers every SUM/AVG argument, which
        lets execution answer fully-matched segments from zone integer
        sums without changing a single bit of the result.
        """

        def walk(operator: PhysicalOperator) -> None:
            if isinstance(operator, TableScan):
                operator.use_zone_maps = self.enable_zone_maps
            if isinstance(operator, HashJoin):
                operator.runtime_filter_enabled = self.enable_runtime_filters
            if (self.enable_zone_maps and isinstance(operator, GroupAggregate)
                    and not operator.group_by):
                sums = [aggregate.argument for aggregate in operator.aggregates
                        if aggregate.func in ("sum", "avg")
                        and aggregate.argument is not None
                        and not aggregate.distinct]
                if all(isinstance(argument, ColumnRef)
                       and self._sum_stays_exact(argument, relations)
                       for argument in sums):
                    operator.zone_exact_sums = True
            for child in operator.children():
                walk(child)

        walk(root)

    # -- morsel-parallel marking ---------------------------------------------------

    def _mark_parallel(self, root: PhysicalOperator,
                       relations: Sequence[_RelationInfo]) -> None:
        """Annotate batch-marked operators with the parallel degree.

        Only columnar, batch-mode table scans above the row threshold
        get ``workers > 1``; hash joins and aggregates fed by such a
        scan inherit the annotation (and aggregates get their
        partial/ordered mode).  Execution re-checks eligibility at run
        time, so these flags — like the vectorized marks they piggyback
        on — are advisory.
        """

        def chain_scan(node: PhysicalOperator) -> Optional[TableScan]:
            while isinstance(node, FilterOp):
                node = node.child
            return node if isinstance(node, TableScan) else None

        def scan_parallel(node: PhysicalOperator) -> bool:
            scan = chain_scan(node)
            return scan is not None and scan.workers > 1

        def walk(operator: PhysicalOperator) -> None:
            for child in operator.children():
                walk(child)
            if isinstance(operator, TableScan):
                if (operator.vectorized
                        and operator.table.storage.kind == "column"
                        and operator.table.row_count >= self.parallel_row_threshold):
                    operator.workers = self.parallelism
            elif isinstance(operator, HashJoin) and operator.vectorized:
                if scan_parallel(operator.build) or scan_parallel(operator.probe):
                    operator.workers = self.parallelism
            elif isinstance(operator, GroupAggregate) and operator.vectorized:
                chain: PhysicalOperator = operator.child
                while isinstance(chain, FilterOp):
                    chain = chain.child
                if isinstance(chain, TableScan) and chain.workers > 1:
                    operator.workers = self.parallelism
                    operator.parallel_mode = self._parallel_aggregate_mode(
                        operator, relations)
                elif isinstance(chain, HashJoin) and chain.workers > 1:
                    # Join-fed aggregation consumes the (ordered) parallel
                    # batch stream; the fold itself stays on the coordinator.
                    operator.workers = self.parallelism

        walk(root)

    def _parallel_aggregate_mode(self, aggregate: GroupAggregate,
                                 relations: Sequence[_RelationInfo]) -> str:
        """``"partial"`` when per-morsel partials merge bit-exactly.

        The single-node mirror of the cluster executor's
        ``_aggregate_mode`` (keep the rules in sync): COUNT/MIN/MAX are
        always safe; SUM/AVG only over an integer-typed column whose
        ANALYZE-bounded total provably stays below 2**53 (the running
        total is a float, so integer addition is associative only while
        exactly representable); DISTINCT needs the merged value stream.
        ``"ordered"`` folds morsels on the coordinator in scan order —
        bit-identical to serial by construction, just less parallel.
        """
        for call in aggregate.aggregates:
            if call.distinct:
                return "ordered"
            if call.func not in ("sum", "avg"):
                continue
            argument = call.argument
            if argument is None:
                continue
            if not isinstance(argument, ColumnRef):
                return "ordered"
            if not self._sum_stays_exact(argument, relations):
                return "ordered"
        return "partial"

    def _sum_stays_exact(self, argument: ColumnRef,
                         relations: Sequence[_RelationInfo]) -> bool:
        """True when |sum(column)| is provably < 2**53 (exact as a float)."""
        qualifier = (argument.qualifier or "").lower()
        owner: Optional[_RelationInfo] = None
        for info in relations:
            if info.kind != "table" or info.table is None:
                continue
            if qualifier and qualifier != info.binding_name.lower():
                continue
            if info.table.has_column(argument.name):
                if owner is not None:
                    return False
                owner = info
        if owner is None or owner.table is None:
            return False
        column = owner.table.column(argument.name)
        if column is None or column.dtype not in _EXACT_SUM_TYPES:
            return False
        statistics = self.database.table_statistics(owner.table.name)
        column_stats = (statistics.column(argument.name)
                        if statistics is not None else None)
        if (column_stats is None or column_stats.minimum is None
                or column_stats.maximum is None):
            return False
        try:
            bound = max(abs(column_stats.minimum), abs(column_stats.maximum), 1)
        except TypeError:
            return False
        rows = max(1, owner.table.row_count)
        for info in relations:
            if info is owner:
                continue
            # A join can multiply occurrences of each value.
            other_rows = (info.table.row_count
                          if info.kind == "table" and info.table is not None
                          else info.estimated_rows)
            rows *= max(1, other_rows)
        return rows * bound < 2 ** 53

    def _propagate_costs(self, root: PhysicalOperator) -> None:
        """Fill in estimates for operators join/access planning did not cost.

        Upper operators (filters, sorts, projection, aggregation) carry
        their child's corrected cardinality (scaled by the operator's
        usual heuristic) and add a small per-row charge on top of their
        children's cost, so EXPLAIN shows consistent row estimates and a
        monotonically growing cumulative cost up the tree.
        """

        def walk(operator: PhysicalOperator) -> None:
            child_cost = 0.0
            for child in operator.children():
                walk(child)
                child_cost += child.planner_cost
            children = operator.children()
            if operator.planner_rows is None and len(children) == 1:
                child = children[0]
                child_rows = (child.planner_rows if child.planner_rows is not None
                              else child.estimated_rows())
                operator.planner_rows = max(1, operator.scale_rows(child_rows))
            if not operator.planner_cost:
                rows = (operator.planner_rows if operator.planner_rows is not None
                        else operator.estimated_rows())
                operator.planner_cost = child_cost + 0.01 * max(1, rows)

        walk(root)

    def _mark_vectorized_pipeline(self, root: PhysicalOperator) -> None:
        """Flag batch execution for a columnar single-table chain.

        The vectorized pipeline applies when the plan is
        ``scan→filter…→project`` or ``scan→filter…→aggregate`` over one
        column-backed table (TOP/DISTINCT/INTO above it just consume the
        projected rows; a Sort between project and scan disqualifies the
        projection but not an aggregation below it).  The flags are
        advisory: execution re-verifies the chain and falls back to the
        row path when it no longer qualifies.
        """
        node = root
        passthrough: list[PhysicalOperator] = []
        while isinstance(node, (InsertIntoOp, TopOp, DistinctOp)):
            passthrough.append(node)
            node = node.child
        if not isinstance(node, ProjectOp):
            return
        project = node
        inner: PhysicalOperator = project.child
        filters: list[FilterOp] = []
        crossed_sort = False
        while isinstance(inner, (FilterOp, SortOp)):
            if isinstance(inner, SortOp):
                crossed_sort = True
            else:
                filters.append(inner)
            inner = inner.child
        if isinstance(inner, GroupAggregate):
            # Filters above the aggregate are HAVING residuals and a Sort
            # is an ORDER BY over the group rows: both run row-at-a-time
            # over the (few) groups while the aggregation itself batches.
            aggregate = inner
            chain: PhysicalOperator = aggregate.child
            below: list[FilterOp] = []
            while isinstance(chain, FilterOp):
                below.append(chain)
                chain = chain.child
            if self._batch_source_ok(chain):
                aggregate.mark_batch_mode()
                for filter_op in below:
                    filter_op.mark_batch_mode()
                self._mark_batch_source(chain)
        elif not crossed_sort and self._batch_source_ok(inner):
            # A Sort between projection and scan consumes scan bindings
            # row-at-a-time, so the projection cannot batch.
            project.mark_batch_mode()
            for filter_op in filters:
                filter_op.mark_batch_mode()
            self._mark_batch_source(inner)
            for op in passthrough:
                if isinstance(op, TopOp):
                    op.mark_batch_mode()

    def _batch_source_ok(self, node: PhysicalOperator) -> bool:
        """A columnar TableScan, or a HashJoin whose probe is a columnar
        scan chain and whose build is either one too or (recursively)
        another such HashJoin — the shapes the batch join driver
        executes."""
        if isinstance(node, TableScan):
            return self._column_backed(node)
        if isinstance(node, HashJoin):
            return self._batch_join_bindings(node) is not None
        return False

    def _batch_join_bindings(self, join: HashJoin) -> Optional[set[str]]:
        """Binding set of a batch-executable (possibly nested) HashJoin.

        Mirrors the execution-side resolver
        (:func:`repro.engine.operators._join_vector_source`): the probe
        must be a ``[FilterOp…] → columnar TableScan`` chain; the build
        may be one, or a batch-executable HashJoin itself.  Returns
        None when the shape disqualifies.
        """
        sides = []
        for side in (join.build, join.probe):
            inner: PhysicalOperator = side
            while isinstance(inner, FilterOp):
                inner = inner.child
            sides.append(inner)
        build, probe = sides
        if not (isinstance(probe, TableScan) and self._column_backed(probe)):
            return None
        if isinstance(build, TableScan) and self._column_backed(build):
            build_bindings = {build.binding_name.lower()}
        elif isinstance(build, HashJoin):
            nested = self._batch_join_bindings(build)
            if nested is None:
                return None
            build_bindings = nested
        else:
            return None
        probe_binding = probe.binding_name.lower()
        if probe_binding in build_bindings:
            return None
        return build_bindings | {probe_binding}

    def _mark_batch_source(self, node: PhysicalOperator) -> None:
        if isinstance(node, TableScan):
            node.mark_batch_mode()
            return
        assert isinstance(node, HashJoin)
        node.mark_batch_mode()
        for side in (node.build, node.probe):
            inner: PhysicalOperator = side
            while isinstance(inner, FilterOp):
                inner.mark_batch_mode()
                inner = inner.child
            if isinstance(inner, HashJoin):
                self._mark_batch_source(inner)
            else:
                inner.mark_batch_mode()

    @staticmethod
    def _column_backed(scan: TableScan) -> bool:
        return scan.table.storage.kind == "column"

    def _rewrite_order_key(self, expression: Expression, query: LogicalQuery) -> Expression:
        """ORDER BY may reference select-list aliases; rewrite to the underlying expression."""
        if isinstance(expression, ColumnRef) and expression.qualifier is None:
            for item in query.select:
                if item.alias and item.alias.lower() == expression.name.lower():
                    return item.expression
        return expression

    def _plan_relationless(self, query: LogicalQuery) -> PhysicalPlan:
        """SELECT without FROM (e.g. ``select dbo.fPhotoFlags('saturated')``)."""
        from .operators import RowSource

        source = RowSource([{}], "#dual")
        root: PhysicalOperator = source
        if query.where is not None:
            root = FilterOp(root, query.where)
        root = ProjectOp(root, query.select, self.database,
                         allow_fused=self.enable_fusion)
        if query.top is not None:
            root = TopOp(root, query.top)
        if query.into:
            root = InsertIntoOp(root, query.into, self.database)
        return PhysicalPlan(root=root, output_names=query.output_names(),
                            database=self.database)
