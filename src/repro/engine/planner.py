"""The query planner: from a :class:`LogicalQuery` to a physical operator tree.

The planner mirrors the behaviour the paper relies on from SQL Server:

* view references are folded down to the base table with their
  additional qualifiers (§9.1.3);
* an index whose key matches a sargable predicate prefix is used as an
  index seek; an index that *covers* the referenced columns is used as
  a narrow covering-index scan (the "tag table" replacement); otherwise
  the plan falls back to a sequential table scan with the predicate
  evaluated per row (the "complex colour cut" queries of §11);
* small relations — in particular the spatial table-valued functions —
  are placed on the outer side of an index nested-loop join that probes
  the big table's index (Figure 10's Query 1 plan);
* equality joins without a usable index become hash joins, and anything
  else becomes a nested-loop join (the "without the index ... nested
  loops join of two table scans" case of §11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from .catalog import Database
from .errors import BindError, PlanError
from .expressions import (AggregateCall, Between, BinaryOp, CaseWhen, ColumnRef,
                          Expression, FunctionCall, InList, Like, Literal,
                          SargablePredicate, Star, UnaryOp, Variable,
                          combine_conjuncts, conjuncts, extract_sargable)
from .index import BTreeIndex
from .logical import (FunctionRef, Join, LogicalQuery, OrderItem, RelationRef,
                      SelectItem, TableRef)
from .operators import (CoveringIndexScan, DistinctOp, FilterOp, FunctionScan,
                        GroupAggregate, HashJoin, IndexNestedLoopJoin,
                        IndexRangeScan, InsertIntoOp, NestedLoopJoin,
                        PhysicalOperator, PhysicalPlan, ProjectOp, SortOp,
                        TableScan, TopOp)
from .table import Table


# ---------------------------------------------------------------------------
# Expression utilities
# ---------------------------------------------------------------------------

def transform_expression(expression: Expression, visit) -> Expression:
    """Rebuild an expression bottom-up, applying ``visit`` to every node."""
    if isinstance(expression, BinaryOp):
        rebuilt: Expression = BinaryOp(expression.op,
                                       transform_expression(expression.left, visit),
                                       transform_expression(expression.right, visit))
    elif isinstance(expression, UnaryOp):
        rebuilt = UnaryOp(expression.op, transform_expression(expression.operand, visit))
    elif isinstance(expression, Between):
        rebuilt = Between(transform_expression(expression.operand, visit),
                          transform_expression(expression.low, visit),
                          transform_expression(expression.high, visit),
                          expression.negated)
    elif isinstance(expression, InList):
        rebuilt = InList(transform_expression(expression.operand, visit),
                         [transform_expression(item, visit) for item in expression.items],
                         expression.negated)
    elif isinstance(expression, Like):
        rebuilt = Like(transform_expression(expression.operand, visit),
                       transform_expression(expression.pattern, visit),
                       expression.negated)
    elif isinstance(expression, FunctionCall):
        rebuilt = FunctionCall(expression.name,
                               [transform_expression(arg, visit) for arg in expression.args])
    elif isinstance(expression, CaseWhen):
        rebuilt = CaseWhen(
            [(transform_expression(cond, visit), transform_expression(value, visit))
             for cond, value in expression.branches],
            transform_expression(expression.default, visit)
            if expression.default is not None else None)
    elif isinstance(expression, AggregateCall):
        rebuilt = AggregateCall(
            expression.func,
            transform_expression(expression.argument, visit)
            if expression.argument is not None else None,
            expression.distinct)
    else:
        rebuilt = expression
    return visit(rebuilt)


def qualify_columns(expression: Expression, binding_name: str, table: Table) -> Expression:
    """Qualify unqualified column references that belong to ``table``."""

    def visit(node: Expression) -> Expression:
        if isinstance(node, ColumnRef) and node.qualifier is None and table.has_column(node.name):
            return ColumnRef(node.name, binding_name)
        return node

    return transform_expression(expression, visit)


def collect_aggregates(expression: Expression) -> list[AggregateCall]:
    found: list[AggregateCall] = []

    def walk(node: Expression) -> None:
        if isinstance(node, AggregateCall):
            found.append(node)
            return
        for child in node.children():
            walk(child)

    walk(expression)
    return found


# ---------------------------------------------------------------------------
# Planner internals
# ---------------------------------------------------------------------------

@dataclass
class _RelationInfo:
    """Everything the planner knows about one FROM-clause relation."""

    ref: RelationRef
    binding_name: str
    kind: str                       # "table" or "function"
    table: Optional[Table] = None
    view_chain: list[str] = field(default_factory=list)
    function_name: str = ""
    function_args: Sequence[Expression] = ()
    local_conjuncts: list[Expression] = field(default_factory=list)
    estimated_rows: int = 0

    @property
    def display_name(self) -> str:
        if self.kind == "function":
            return self.function_name
        assert self.table is not None
        return self.table.name


@dataclass
class _PlannedAccessPath:
    operator: PhysicalOperator
    estimated_rows: int


class Planner:
    """Builds physical plans for one database."""

    #: Selectivity guesses used for cardinality estimation.  Without column
    #: histograms these are deliberately conservative: an equality predicate
    #: on a non-unique column (e.g. ``type = 'galaxy'``) keeps a sizeable
    #: fraction of the table, so small relations such as the spatial
    #: table-valued functions still win the outer position of a nested-loop
    #: join (the Figure 10 plan).
    EQUALITY_SELECTIVITY = 0.05
    RANGE_SELECTIVITY = 0.25
    RESIDUAL_SELECTIVITY = 0.5

    def __init__(self, database: Database, *, enable_hash_join: bool = True,
                 enable_fusion: bool = True, enable_vectorized: bool = True):
        self.database = database
        #: When False, equality joins without a usable index fall back to a
        #: nested-loop join of the two inputs — the plan SQL Server 2000 chose
        #: for the paper's NEO query once its covering index was removed
        #: (Figure 12's "about 10 minutes" case).  The ablation benchmark uses
        #: this to reproduce that comparison.
        self.enable_hash_join = enable_hash_join
        #: When False, single-table plans never take the fused
        #: scan→filter→project fast path (the compilation benchmark's baseline).
        self.enable_fusion = enable_fusion
        #: When False, plans over column-backed tables stay row-at-a-time
        #: (the columnar benchmark's ablation switch).
        self.enable_vectorized = enable_vectorized
        #: Number of plans built; the plan-cache tests assert a cache hit
        #: leaves this untouched.
        self.plans_built = 0

    # -- public API ---------------------------------------------------------

    def plan(self, query: LogicalQuery) -> PhysicalPlan:
        self.plans_built += 1
        if not query.select:
            raise PlanError("query has an empty select list")
        if not query.all_relations():
            return self._plan_relationless(query)

        relations = [self._resolve_relation(ref) for ref in query.all_relations()]
        by_name = {info.binding_name: info for info in relations}
        if len(by_name) != len(relations):
            raise BindError("duplicate relation alias in FROM clause")

        predicate_pool = self._build_predicate_pool(query, relations)
        self._assign_local_conjuncts(predicate_pool, relations)
        for info in relations:
            info.estimated_rows = self._estimate_relation(info)

        root, planned = self._plan_joins(relations, predicate_pool, query)

        residual = [conjunct for conjunct in predicate_pool.remaining
                    if self._conjunct_aliases(conjunct, by_name) <= planned]
        leftover = [c for c in predicate_pool.remaining if c not in residual]
        if leftover:
            raise PlanError(
                "unplaced predicate(s): " + "; ".join(c.sql() for c in leftover))
        combined = combine_conjuncts(residual)
        if combined is not None:
            root = FilterOp(root, combined)

        return self._finish_plan(root, query, relations)

    # -- relation resolution --------------------------------------------------

    def _resolve_relation(self, ref: RelationRef) -> _RelationInfo:
        if isinstance(ref, FunctionRef):
            function = self.database.functions.table_valued(ref.name)
            return _RelationInfo(ref=ref, binding_name=ref.binding_name, kind="function",
                                 function_name=function.name, function_args=list(ref.args),
                                 estimated_rows=function.row_estimate)
        if self.database.functions.has_table_valued(ref.name):
            # A table-valued function referenced without arguments.
            function = self.database.functions.table_valued(ref.name)
            return _RelationInfo(ref=FunctionRef(ref.name, [], ref.alias),
                                 binding_name=ref.binding_name, kind="function",
                                 function_name=function.name, function_args=[],
                                 estimated_rows=function.row_estimate)
        resolved = self.database.resolve_relation(ref.name)
        table = self.database.table(resolved.table_name)
        info = _RelationInfo(ref=ref, binding_name=ref.binding_name, kind="table",
                             table=table, view_chain=resolved.view_chain,
                             estimated_rows=table.row_count)
        if resolved.predicate is not None:
            qualified = qualify_columns(resolved.predicate, info.binding_name, table)
            info.local_conjuncts.extend(conjuncts(qualified))
        return info

    # -- predicate management ---------------------------------------------------

    @dataclass
    class _PredicatePool:
        remaining: list[Expression] = field(default_factory=list)

    def _build_predicate_pool(self, query: LogicalQuery,
                              relations: Sequence[_RelationInfo]) -> "_PredicatePool":
        pool = Planner._PredicatePool()
        pool.remaining.extend(conjuncts(query.where))
        for join in query.joins:
            pool.remaining.extend(conjuncts(join.condition))
        return pool

    def _assign_local_conjuncts(self, pool: "_PredicatePool",
                                relations: Sequence[_RelationInfo]) -> None:
        by_name = {info.binding_name: info for info in relations}
        still_remaining: list[Expression] = []
        for conjunct in pool.remaining:
            aliases = self._conjunct_aliases(conjunct, by_name)
            if len(aliases) == 1:
                by_name[next(iter(aliases))].local_conjuncts.append(conjunct)
            elif len(aliases) == 0:
                # Constant predicate: keep it as a residual filter.
                still_remaining.append(conjunct)
            else:
                still_remaining.append(conjunct)
        pool.remaining = still_remaining

    def _conjunct_aliases(self, conjunct: Expression,
                          by_name: dict[str, _RelationInfo]) -> set[str]:
        aliases: set[str] = set()
        for qualifier, column in conjunct.referenced_columns():
            if qualifier is not None:
                if qualifier in by_name:
                    aliases.add(qualifier)
                else:
                    raise BindError(f"unknown alias {qualifier!r} in {conjunct.sql()}")
                continue
            owners = [info.binding_name for info in by_name.values()
                      if self._relation_has_column(info, column)]
            if len(owners) == 1:
                aliases.add(owners[0])
            elif len(owners) > 1:
                # Ambiguous unqualified reference: involve every candidate so the
                # predicate stays above the join where all rows are in scope.
                aliases.update(owners)
        return aliases

    def _relation_has_column(self, info: _RelationInfo, column: str) -> bool:
        if info.kind == "table":
            assert info.table is not None
            return info.table.has_column(column)
        function = self.database.functions.table_valued(info.function_name)
        return column.lower() in {name.lower() for name in function.column_names()}

    # -- cardinality estimation ---------------------------------------------------

    def _estimate_relation(self, info: _RelationInfo) -> int:
        if info.kind == "function":
            return max(1, info.estimated_rows)
        assert info.table is not None
        estimate = float(max(1, info.table.row_count))
        for conjunct in info.local_conjuncts:
            sargable = extract_sargable(conjunct)
            if sargable is not None and sargable.is_equality:
                estimate *= self.EQUALITY_SELECTIVITY
            elif sargable is not None:
                estimate *= self.RANGE_SELECTIVITY
            else:
                estimate *= self.RESIDUAL_SELECTIVITY
        return max(1, int(estimate))

    # -- access paths ------------------------------------------------------------

    def _needed_columns(self, query: LogicalQuery, info: _RelationInfo,
                        relations: Sequence[_RelationInfo]) -> Optional[set[str]]:
        """Columns of ``info`` referenced anywhere in the query.

        Returns None when a bare ``*`` (or ``alias.*``) forces the full row.
        """
        needed: set[str] = set()
        expressions: list[Expression] = [item.expression for item in query.select]
        if query.where is not None:
            expressions.append(query.where)
        for join in query.joins:
            if join.condition is not None:
                expressions.append(join.condition)
        expressions.extend(order.expression for order in query.order_by)
        expressions.extend(query.group_by)
        if query.having is not None:
            expressions.append(query.having)
        expressions.extend(info.local_conjuncts)
        others = [other for other in relations if other.binding_name != info.binding_name]
        for expression in expressions:
            if isinstance(expression, Star):
                if expression.qualifier is None or expression.qualifier.lower() == info.binding_name:
                    return None
                continue
            for qualifier, column in expression.referenced_columns():
                if qualifier == info.binding_name:
                    needed.add(column)
                elif qualifier is None and self._relation_has_column(info, column):
                    uniquely_mine = not any(self._relation_has_column(other, column)
                                            for other in others)
                    if uniquely_mine or True:
                        needed.add(column)
        return needed

    def _access_path(self, info: _RelationInfo, query: LogicalQuery,
                     relations: Sequence[_RelationInfo]) -> _PlannedAccessPath:
        if info.kind == "function":
            function = self.database.functions.table_valued(info.function_name)
            operator = FunctionScan(function, list(info.function_args), info.binding_name)
            return _PlannedAccessPath(operator, max(1, function.row_estimate))
        assert info.table is not None
        table = info.table
        sargables: dict[str, SargablePredicate] = {}
        non_sargable: list[Expression] = []
        for conjunct in info.local_conjuncts:
            sargable = extract_sargable(conjunct)
            if sargable is not None and (sargable.qualifier is None
                                         or sargable.qualifier == info.binding_name):
                # Keep the most selective predicate per column (equality wins).
                existing = sargables.get(sargable.column)
                if existing is None or (sargable.is_equality and not existing.is_equality):
                    if existing is not None:
                        non_sargable.append(existing.source)
                    sargables[sargable.column] = sargable
                else:
                    non_sargable.append(conjunct)
            else:
                non_sargable.append(conjunct)

        best_index: Optional[BTreeIndex] = None
        best_prefix: list[SargablePredicate] = []
        for index in table.indexes.values():
            prefix: list[SargablePredicate] = []
            for column in index.columns:
                sargable = sargables.get(column)
                if sargable is None:
                    break
                prefix.append(sargable)
                if not sargable.is_equality:
                    break
            if prefix and len(prefix) > len(best_prefix):
                best_index, best_prefix = index, prefix

        needed = self._needed_columns(query, info, relations)

        if best_index is not None and best_prefix:
            used = {sargable.column for sargable in best_prefix}
            residual_parts = non_sargable + [sargable.source for column, sargable
                                             in sargables.items() if column not in used]
            residual = combine_conjuncts(
                [qualify_columns(part, info.binding_name, table) for part in residual_parts])
            low = [s.low for s in best_prefix if s.low is not None]
            high = [s.high for s in best_prefix if s.high is not None]
            estimate = self._estimate_index_rows(table, best_index, best_prefix)
            covering = needed is not None and best_index.covers(needed)
            operator = IndexRangeScan(best_index, info.binding_name,
                                      low if low else None, high if high else None,
                                      predicate=residual, estimated=estimate,
                                      covering=covering)
            return _PlannedAccessPath(operator, estimate)

        predicate = combine_conjuncts(
            [qualify_columns(part, info.binding_name, table)
             for part in info.local_conjuncts])
        if needed is not None:
            for index in table.indexes.values():
                if index.covers(needed):
                    operator = CoveringIndexScan(index, info.binding_name, predicate)
                    return _PlannedAccessPath(operator, self._estimate_relation(info))
        operator = TableScan(table, info.binding_name, predicate)
        return _PlannedAccessPath(operator, self._estimate_relation(info))

    def _estimate_index_rows(self, table: Table, index: BTreeIndex,
                             prefix: Sequence[SargablePredicate]) -> int:
        estimate = float(max(1, table.row_count))
        full_unique = (index.unique and len(prefix) == len(index.columns)
                       and all(s.is_equality for s in prefix))
        if full_unique:
            return 1
        for sargable in prefix:
            estimate *= (self.EQUALITY_SELECTIVITY if sargable.is_equality
                         else self.RANGE_SELECTIVITY)
        return max(1, int(estimate))

    # -- join planning ---------------------------------------------------------------

    def _plan_joins(self, relations: list[_RelationInfo], pool: "_PredicatePool",
                    query: LogicalQuery) -> tuple[PhysicalOperator, set[str]]:
        by_name = {info.binding_name: info for info in relations}
        unplanned = {info.binding_name for info in relations}
        # Start from the relation with the smallest estimated cardinality —
        # for Query 1 this puts the spatial TVF on the outer side, as in Figure 10.
        start = min(relations, key=lambda info: info.estimated_rows)
        path = self._access_path(start, query, relations)
        root: PhysicalOperator = path.operator
        root_estimate = path.estimated_rows
        planned = {start.binding_name}
        unplanned.discard(start.binding_name)

        while unplanned:
            choice = self._choose_next_relation(planned, unplanned, by_name, pool)
            info = by_name[choice]
            join_conjuncts = self._join_conjuncts(choice, planned, by_name, pool)
            equalities = [self._join_equality(conjunct, choice, by_name)
                          for conjunct in join_conjuncts]
            equalities = [pair for pair in equalities if pair is not None]

            index_plan = None
            if info.kind == "table" and equalities:
                index_plan = self._index_join(root, info, equalities, join_conjuncts)
            if index_plan is not None:
                root, used_conjuncts = index_plan
                root_estimate = max(root_estimate, info.estimated_rows)
                pool.remaining = [c for c in pool.remaining if c not in used_conjuncts]
            elif equalities and self.enable_hash_join:
                inner_path = self._access_path(info, query, relations)
                build_keys = [expr_new for (_conjunct, expr_new, _expr_old) in equalities]
                probe_keys = [expr_old for (_conjunct, _expr_new, expr_old) in equalities]
                residual_parts = [conjunct for conjunct in join_conjuncts
                                  if conjunct not in [c for c, _n, _o in equalities]]
                residual = combine_conjuncts(residual_parts)
                root = HashJoin(inner_path.operator, root, build_keys, probe_keys, residual)
                root_estimate = max(root_estimate, inner_path.estimated_rows)
                pool.remaining = [c for c in pool.remaining if c not in join_conjuncts]
            else:
                inner_path = self._access_path(info, query, relations)
                residual = combine_conjuncts(join_conjuncts)
                root = NestedLoopJoin(root, inner_path.operator, residual)
                root_estimate *= max(1, inner_path.estimated_rows)
                pool.remaining = [c for c in pool.remaining if c not in join_conjuncts]
            planned.add(choice)
            unplanned.discard(choice)
        return root, planned

    def _choose_next_relation(self, planned: set[str], unplanned: set[str],
                              by_name: dict[str, _RelationInfo],
                              pool: "_PredicatePool") -> str:
        scored: list[tuple[int, int, str]] = []
        for name in unplanned:
            join_conjuncts = self._join_conjuncts(name, planned, by_name, pool)
            has_equality = any(self._join_equality(conjunct, name, by_name) is not None
                               for conjunct in join_conjuncts)
            connected = 0 if has_equality else (1 if join_conjuncts else 2)
            scored.append((connected, by_name[name].estimated_rows, name))
        scored.sort()
        return scored[0][2]

    def _join_conjuncts(self, name: str, planned: set[str],
                        by_name: dict[str, _RelationInfo],
                        pool: "_PredicatePool") -> list[Expression]:
        found = []
        for conjunct in pool.remaining:
            aliases = self._conjunct_aliases(conjunct, by_name)
            if name in aliases and aliases <= planned | {name}:
                found.append(conjunct)
        return found

    def _join_equality(self, conjunct: Expression, new_name: str,
                       by_name: dict[str, _RelationInfo]
                       ) -> Optional[tuple[Expression, Expression, Expression]]:
        """Recognise ``new.col = old_expr``; returns (conjunct, new_side, old_side)."""
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            return None
        left_aliases = self._conjunct_aliases(conjunct.left, by_name)
        right_aliases = self._conjunct_aliases(conjunct.right, by_name)
        if left_aliases == {new_name} and new_name not in right_aliases:
            return (conjunct, conjunct.left, conjunct.right)
        if right_aliases == {new_name} and new_name not in left_aliases:
            return (conjunct, conjunct.right, conjunct.left)
        return None

    def _index_join(self, outer: PhysicalOperator, info: _RelationInfo,
                    equalities: Sequence[tuple[Expression, Expression, Expression]],
                    join_conjuncts: Sequence[Expression]
                    ) -> Optional[tuple[PhysicalOperator, list[Expression]]]:
        """Try to turn the join into an index nested-loop join probing ``info``."""
        assert info.table is not None
        table = info.table
        by_column: dict[str, tuple[Expression, Expression, Expression]] = {}
        for conjunct, new_side, old_side in equalities:
            if isinstance(new_side, ColumnRef):
                by_column[new_side.name.lower()] = (conjunct, new_side, old_side)
        best_index: Optional[BTreeIndex] = None
        best_prefix: list[str] = []
        for index in table.indexes.values():
            prefix = []
            for column in index.columns:
                if column in by_column:
                    prefix.append(column)
                else:
                    break
            if prefix and len(prefix) > len(best_prefix):
                best_index, best_prefix = index, prefix
        if best_index is None:
            return None
        outer_key = [by_column[column][2] for column in best_prefix]
        used = [by_column[column][0] for column in best_prefix]
        residual_parts = [conjunct for conjunct in join_conjuncts if conjunct not in used]
        residual_parts.extend(qualify_columns(part, info.binding_name, table)
                              for part in info.local_conjuncts)
        residual = combine_conjuncts(residual_parts)
        operator = IndexNestedLoopJoin(outer, table, info.binding_name, best_index,
                                       outer_key, residual)
        return operator, list(join_conjuncts)

    # -- finishing touches ----------------------------------------------------------

    def _finish_plan(self, root: PhysicalOperator, query: LogicalQuery,
                     relations: Sequence[_RelationInfo]) -> PhysicalPlan:
        aggregates: list[AggregateCall] = []
        for item in query.select:
            aggregates.extend(collect_aggregates(item.expression))
        if query.having is not None:
            aggregates.extend(collect_aggregates(query.having))
        if aggregates or query.group_by:
            root = GroupAggregate(root, list(query.group_by), aggregates)
            if query.having is not None:
                root = FilterOp(root, query.having)

        if query.order_by:
            keys = [(self._rewrite_order_key(order.expression, query), order.descending)
                    for order in query.order_by]
            root = SortOp(root, keys)

        root = ProjectOp(root, query.select, self.database,
                         allow_fused=self.enable_fusion)
        if query.distinct:
            root = DistinctOp(root)
        if query.top is not None:
            root = TopOp(root, query.top)
        if query.into:
            root = InsertIntoOp(root, query.into, self.database)

        if self.enable_vectorized:
            self._mark_vectorized_pipeline(root)
        return PhysicalPlan(root=root, output_names=query.output_names(),
                            database=self.database)

    def _mark_vectorized_pipeline(self, root: PhysicalOperator) -> None:
        """Flag batch execution for a columnar single-table chain.

        The vectorized pipeline applies when the plan is
        ``scan→filter…→project`` or ``scan→filter…→aggregate`` over one
        column-backed table (TOP/DISTINCT/INTO above it just consume the
        projected rows; a Sort between project and scan disqualifies the
        projection but not an aggregation below it).  The flags are
        advisory: execution re-verifies the chain and falls back to the
        row path when it no longer qualifies.
        """
        node = root
        passthrough: list[PhysicalOperator] = []
        while isinstance(node, (InsertIntoOp, TopOp, DistinctOp)):
            passthrough.append(node)
            node = node.child
        if not isinstance(node, ProjectOp):
            return
        project = node
        inner: PhysicalOperator = project.child
        filters: list[FilterOp] = []
        crossed_sort = False
        while isinstance(inner, (FilterOp, SortOp)):
            if isinstance(inner, SortOp):
                crossed_sort = True
            else:
                filters.append(inner)
            inner = inner.child
        if isinstance(inner, GroupAggregate):
            # Filters above the aggregate are HAVING residuals and a Sort
            # is an ORDER BY over the group rows: both run row-at-a-time
            # over the (few) groups while the aggregation itself batches.
            aggregate = inner
            chain: PhysicalOperator = aggregate.child
            below: list[FilterOp] = []
            while isinstance(chain, FilterOp):
                below.append(chain)
                chain = chain.child
            if isinstance(chain, TableScan) and self._column_backed(chain):
                aggregate.mark_batch_mode()
                for filter_op in below:
                    filter_op.mark_batch_mode()
                chain.mark_batch_mode()
        elif (isinstance(inner, TableScan) and not crossed_sort
              and self._column_backed(inner)):
            # A Sort between projection and scan consumes scan bindings
            # row-at-a-time, so the projection cannot batch.
            project.mark_batch_mode()
            for filter_op in filters:
                filter_op.mark_batch_mode()
            inner.mark_batch_mode()
            for op in passthrough:
                if isinstance(op, TopOp):
                    op.mark_batch_mode()

    @staticmethod
    def _column_backed(scan: TableScan) -> bool:
        return scan.table.storage.kind == "column"

    def _rewrite_order_key(self, expression: Expression, query: LogicalQuery) -> Expression:
        """ORDER BY may reference select-list aliases; rewrite to the underlying expression."""
        if isinstance(expression, ColumnRef) and expression.qualifier is None:
            for item in query.select:
                if item.alias and item.alias.lower() == expression.name.lower():
                    return item.expression
        return expression

    def _plan_relationless(self, query: LogicalQuery) -> PhysicalPlan:
        """SELECT without FROM (e.g. ``select dbo.fPhotoFlags('saturated')``)."""
        from .operators import RowSource

        source = RowSource([{}], "#dual")
        root: PhysicalOperator = source
        if query.where is not None:
            root = FilterOp(root, query.where)
        root = ProjectOp(root, query.select, self.database,
                         allow_fused=self.enable_fusion)
        if query.top is not None:
            root = TopOp(root, query.top)
        if query.into:
            root = InsertIntoOp(root, query.into, self.database)
        return PhysicalPlan(root=root, output_names=query.output_names(),
                            database=self.database)
