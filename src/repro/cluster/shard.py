"""Shard nodes and the cluster that owns them.

A :class:`ShardNode` is one in-process "server" of the cluster: it owns
a full engine :class:`~repro.engine.catalog.Database` holding its slice
of every partitioned table, with the same index definitions as the
single-node catalog, its own ANALYZE statistics, and (optionally) the
column-oriented storage layout — a shard reuses ``convert_storage`` and
``analyze`` exactly as a standalone database would.

Alongside each table the node keeps the **global sequence** of every
row: the position the row had in the single-node load order.  This is
the cluster's ordering spine — the scatter-gather executor merges shard
streams by sequence (or by index key, then sequence) so that a sharded
query emits rows in *exactly* the order the single-node engine would,
which is what makes the fig13 suite byte-identical across layouts.

A :class:`ShardCluster` carries the shard nodes, the per-table
:class:`~repro.cluster.partition.Placement` map, and the coordinator
database.  After :meth:`ShardCluster.from_database` partitions the data
the coordinator's tables are emptied — data lives in the shards — but
the coordinator keeps its schema, index definitions and ANALYZE
snapshots: the distributed planner uses them to mirror the single-node
optimizer's decisions, and queries outside the distributable subset
*gather* their tables back into the coordinator (data shipping), cached
until DML on any shard invalidates the copy.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
from array import array
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from ..engine import Database
from ..engine.concurrency import lock_tables
from ..engine.durable import DurabilityManager, RecoveryError
from ..engine.table import Table
from ..engine.types import NULL
from ..htm import DEFAULT_DEPTH, id_range_at_depth
from ..telemetry.metrics import METRICS
from .partition import (DerivedPlacement, HashPlacement, HtmPlacement,
                        Placement, RangePlacement, SKYSERVER_AFFINITY,
                        PHOTO_CHILDREN, ZonePlacement, quantile_boundaries)

#: Spatial partition columns of the two range schemes.
ZONE_COLUMN = "dec"
HTM_COLUMN = "htmid"

#: Cached handle — cluster insert routing is per-row hot during loads.
_ROUTED_ROWS = METRICS.counter("cluster.rows_routed")


def _default_zone_boundaries(shards: int) -> list[float]:
    """Equal-width declination bands when no data is available."""
    step = 180.0 / shards
    return [-90.0 + step * i for i in range(1, shards)]


def _default_htm_boundaries(shards: int) -> list[int]:
    """Equal splits of the storage-depth HTM id space."""
    low, _ = id_range_at_depth(8, DEFAULT_DEPTH)
    _, high = id_range_at_depth(15, DEFAULT_DEPTH)
    span = high - low + 1
    return [low + (span * i) // shards for i in range(1, shards)]


class ShardNode:
    """One shard: a full engine database plus the global-sequence maps."""

    def __init__(self, shard_id: int, database: Database):
        self.shard_id = shard_id
        self.database = database
        #: table key (lower-cased) -> list indexed by row id, holding each
        #: row's global sequence number.  Row ids are dense append
        #: positions, so the list grows one entry per insert; deletes
        #: leave their entry behind (the tombstoned id never surfaces).
        self._sequences: dict[str, list[int]] = {}

    # -- loading -----------------------------------------------------------

    def bulk_load(self, table_name: str, rows: Sequence[dict[str, Any]],
                  sequences: Sequence[int]) -> int:
        """Append pre-validated rows (one exclusive section, deferred sort)."""
        table = self.database.table(table_name)
        key = table.name.lower()
        sequence_list = self._sequences.setdefault(key, [])
        manager = self.database.durability
        with lock_tables([(table, "write")]):
            for row, sequence in zip(rows, sequences):
                if manager is not None:
                    # Bind the sequence into the insert's WAL frame so
                    # the (row, sequence) pair can never tear apart.
                    manager.stage_sequence(sequence)
                table.insert(row, defer_index_sort=True, skip_fk=True)
            table.rebuild_indexes()
            sequence_list.extend(sequences)
        return len(rows)

    def insert(self, table_name: str, values: dict[str, Any], sequence: int) -> int:
        """Insert one routed row, recording its global sequence."""
        table = self.database.table(table_name)
        key = table.name.lower()
        sequence_list = self._sequences.setdefault(key, [])
        manager = self.database.durability
        with lock_tables([(table, "write")]):
            if manager is not None:
                manager.stage_sequence(sequence)
            row_id = table.insert(values, skip_fk=True)
            # Row ids are dense append positions, so the sequence list
            # stays exactly parallel to the slot array.
            assert row_id == len(sequence_list)
            sequence_list.append(sequence)
        return row_id

    def delete_where(self, table_name: str,
                     predicate: Callable[[dict[str, Any]], bool]) -> int:
        return self.database.table(table_name).delete_where(predicate)

    # -- storage layout / statistics (per-shard reuse of the engine) -------

    def convert_storage(self, kind: str) -> int:
        """Convert every loaded table, remapping the sequence lists.

        Conversion compacts row ids in id order (dropping tombstones),
        so the new sequence list is the old one restricted to live ids.
        """
        converted = 0
        for key in list(self._sequences):
            self._convert_one(self.database.table(key), kind)
            converted += 1
        return converted

    def _convert_one(self, table: Table, kind: str) -> None:
        key = table.name.lower()
        old = self._sequences.get(key, [])
        live_ids = [row_id for row_id, _row in table.storage.iter_rows()]
        table.convert_storage(kind)
        self._sequences[key] = [old[row_id] for row_id in live_ids]

    def vacuum(self, table_name: str) -> int:
        """Compact one table's storage, remapping its sequence list."""
        table = self.database.table(table_name)
        key = table.name.lower()
        old = self._sequences.get(key, [])
        live_ids = [row_id for row_id, _row in table.storage.iter_rows()]
        reclaimed = table.vacuum()
        if reclaimed:
            self._sequences[key] = [old[row_id] for row_id in live_ids]
        return reclaimed

    def analyze(self) -> int:
        """ANALYZE every loaded table of this shard."""
        for key in self._sequences:
            self.database.analyze_table(key)
        return len(self._sequences)

    # -- durability --------------------------------------------------------

    def make_durable(self, path: str | os.PathLike, *, fsync: bool = False,
                     checkpoint: bool = True) -> DurabilityManager:
        """Attach this shard's database to an on-disk directory.

        The sequence spine rides along with every checkpoint (as an
        ``extra-sequences.bin`` state blob) and every online insert's
        WAL frame carries its global sequence, so recovery rebuilds the
        exact merge order the gather/scatter paths rely on.
        """
        manager = DurabilityManager.attach(self.database, path, fsync=fsync,
                                           checkpoint=False)
        manager.state_providers["sequences"] = self._sequence_state
        manager.replay_delegate = self
        if checkpoint:
            manager.checkpoint()
        return manager

    def _sequence_state(self) -> dict[str, array]:
        return {key: array("q", sequences)
                for key, sequences in self._sequences.items()}

    @classmethod
    def recover(cls, shard_id: int, path: str | os.PathLike, *,
                fsync: bool = False) -> tuple["ShardNode", DurabilityManager]:
        """Reopen one shard from disk, replaying its WAL tail through the
        node so the sequence spine tracks every recovered insert."""
        node_ref: list["ShardNode"] = []

        def prepare(manager: DurabilityManager) -> None:
            node = cls(shard_id, manager.database)
            state = manager.read_extra("sequences") or {}
            node._sequences = {key: list(sequences)
                               for key, sequences in state.items()}
            manager.replay_delegate = node
            manager.state_providers["sequences"] = node._sequence_state
            node_ref.append(node)

        manager = DurabilityManager.open(path, fsync=fsync, prepare=prepare)
        return node_ref[0], manager

    # -- WAL replay delegate (see repro.engine.durable) --------------------

    def replay_insert(self, table: Table, row: dict[str, Any],
                      sequence: Optional[int]) -> None:
        key = table.name.lower()
        sequence_list = self._sequences.setdefault(key, [])
        row_id = table.insert(row, skip_fk=True)
        if sequence is None:
            raise RecoveryError(
                f"shard {self.shard_id}: insert into {table.name!r} "
                "recovered without a global sequence")
        assert row_id == len(sequence_list)
        sequence_list.append(sequence)

    def replay_vacuum(self, table: Table) -> None:
        self.vacuum(table.name)

    def replay_convert(self, table: Table, layout: str) -> None:
        self._convert_one(table, layout)

    # -- read access -------------------------------------------------------

    def table(self, table_name: str) -> Table:
        return self.database.table(table_name)

    def sequence_list(self, table_name: str) -> list[int]:
        return self._sequences.get(table_name.lower(), [])

    def row_count(self, table_name: str) -> int:
        if not self.database.has_table(table_name):
            return 0
        return self.database.table(table_name).row_count

    def iter_sequenced_rows(self, table_name: str
                            ) -> Iterator[tuple[int, dict[str, Any]]]:
        """(global sequence, row) pairs in shard-local (= sequence) order."""
        table = self.database.table(table_name)
        sequences = self.sequence_list(table_name)
        for row_id, row in table.iter_rows():
            yield sequences[row_id], row


class ShardCluster:
    """N shard nodes, a placement map and the coordinator catalog."""

    def __init__(self, coordinator: Database, shards: Sequence[ShardNode],
                 placements: dict[str, Placement], scheme: str):
        self.coordinator = coordinator
        self.shards = list(shards)
        self.placements = placements
        self.scheme = scheme
        #: Per-table next global sequence number (monotonic).
        self._next_sequence: dict[str, int] = {}
        #: Average row bytes recorded at partition time (the coordinator's
        #: copy is empty, so the planner reads widths from here).
        self.table_row_bytes: dict[str, float] = {}
        #: Gather cache: table key -> the per-shard modification counters
        #: the coordinator's materialised copy was built against.
        self._gathered: dict[str, tuple[int, ...]] = {}
        self._gather_lock = threading.Lock()
        #: Serialises cluster-level DML: global sequence numbers must be
        #: unique AND appended to each shard in ascending order (the
        #: merge relies on per-shard streams being sequence-sorted), so
        #: the sequence draw and the shard append form one section.
        self._dml_lock = threading.Lock()
        self.gather_count = 0
        self.gather_invalidations = 0
        self.rows_gathered = 0
        self._executor = None
        #: Durability managers once :meth:`make_durable` / :meth:`open_durable`
        #: ran: ``{"path": str, "coordinator": manager, "shards": [manager]}``.
        self.durability = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_database(cls, database: Database, *, shards: int,
                      partition: str = "hash",
                      affinity: Optional[dict[str, str]] = None,
                      columnar: bool = False,
                      analyze: bool = True,
                      build_indices: bool = True,
                      detach_rows: bool = True) -> "ShardCluster":
        """Partition every table of ``database`` across ``shards`` nodes.

        ``partition`` is ``"hash"``, ``"zone"`` (declination bands) or
        ``"htm"`` (trixel-id ranges); under the spatial schemes the
        photo snowflake arms derive their placement from PhotoObj so
        ``objID`` joins stay shard-local.  With ``detach_rows`` (the
        default) the coordinator's tables are truncated afterwards —
        its schema, index definitions and ANALYZE snapshots remain for
        planning and for the gather (data-shipping) fallback.
        """
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        if partition not in ("hash", "zone", "htm"):
            raise ValueError(f"unknown partition scheme {partition!r} "
                             "(expected 'hash', 'zone' or 'htm')")
        affinity_map = dict(SKYSERVER_AFFINITY)
        if affinity:
            affinity_map.update({k.lower(): v.lower() for k, v in affinity.items()})
        nodes = [ShardNode(index, cls._shard_database(database, index))
                 for index in range(shards)]
        placements: dict[str, Placement] = {}
        cluster = cls(database, nodes, placements, partition)

        ordered = cls._split_order(database)
        photo_route: dict[Any, int] = {}
        for name in ordered:
            table = database.table(name)
            key = table.name.lower()
            placement = cls._placement_for(table, partition, shards,
                                           affinity_map, photo_route)
            placements[key] = placement
            cluster.table_row_bytes[key] = table.average_row_bytes()
            per_shard_rows: list[list[dict[str, Any]]] = [[] for _ in nodes]
            per_shard_sequences: list[list[int]] = [[] for _ in nodes]
            sequence = 0
            record_route = (key == "photoobj" and partition in ("zone", "htm"))
            for _row_id, row in table.iter_rows():
                shard = placement.shard_of(row)
                if record_route:
                    photo_route[row.get("objid")] = shard
                per_shard_rows[shard].append(row)
                per_shard_sequences[shard].append(sequence)
                sequence += 1
            cluster._next_sequence[key] = sequence
            for node, rows, sequences in zip(nodes, per_shard_rows,
                                             per_shard_sequences):
                node.bulk_load(table.name, rows, sequences)
        if build_indices:
            for node in nodes:
                cls._clone_indices(database, node.database)
        if columnar:
            for node in nodes:
                node.convert_storage("column")
        if analyze:
            for node in nodes:
                node.analyze()
        if detach_rows:
            for name in ordered:
                # Truncation drops the rows but keeps the schema, the
                # index definitions and — crucially — the ANALYZE
                # snapshots the distributed planner costs against.
                database.table(name).truncate()
        return cluster

    @staticmethod
    def _split_order(database: Database) -> list[str]:
        """PhotoObj first, so derived placements can record its routing."""
        names = database.table_names()
        return sorted(names, key=lambda name: (name.lower() != "photoobj",
                                               name.lower()))

    @staticmethod
    def _shard_database(database: Database, index: int) -> Database:
        """An empty clone of the coordinator's table schemas (no FKs/views)."""
        shard_db = Database(f"{database.name}-shard{index}",
                            description=f"shard {index} of {database.name}")
        for name in database.table_names():
            table = database.table(name)
            shard_db.create_table(table.name, table.columns,
                                  primary_key=table.primary_key,
                                  description=table.description)
        return shard_db

    @staticmethod
    def _clone_indices(database: Database, shard_db: Database) -> int:
        """Recreate the coordinator's secondary indexes on one shard."""
        created = 0
        for name in database.table_names():
            source = database.table(name)
            target = shard_db.table(name)
            existing = {index_name.lower() for index_name in target.indexes}
            for index in source.indexes.values():
                if index.name.lower() in existing:
                    continue
                target.create_index(index.name, index.columns,
                                    unique=index.unique,
                                    included_columns=index.included_columns)
                created += 1
        return created

    @classmethod
    def _placement_for(cls, table: Table, partition: str, shards: int,
                       affinity: dict[str, str],
                       photo_route: dict[Any, int]) -> Placement:
        key = table.name.lower()
        if partition in ("zone", "htm"):
            column = ZONE_COLUMN if partition == "zone" else HTM_COLUMN
            if key == "photoobj" and table.has_column(column):
                return cls._range_placement(table, partition, shards, column)
            if key in PHOTO_CHILDREN:
                return DerivedPlacement(table.name, "objid", shards,
                                        "photoobj", photo_route)
            if key != "photoobj" and table.has_column(column) and table.row_count:
                return cls._range_placement(table, partition, shards, column)
        return HashPlacement(table.name, cls._hash_column(table, affinity), shards)

    @staticmethod
    def _range_placement(table: Table, partition: str, shards: int,
                         column: str) -> RangePlacement:
        values = [row.get(column) for _row_id, row in table.iter_rows()]
        boundaries: Sequence[Any] = quantile_boundaries(values, shards)
        if len(boundaries) != shards - 1:
            boundaries = (_default_zone_boundaries(shards) if partition == "zone"
                          else _default_htm_boundaries(shards))
        placement_cls = ZonePlacement if partition == "zone" else HtmPlacement
        return placement_cls(table.name, column, shards, boundaries)

    @staticmethod
    def _hash_column(table: Table, affinity: dict[str, str]) -> str:
        column = affinity.get(table.name.lower())
        if column and table.has_column(column):
            return column
        if table.primary_key is not None and table.primary_key.columns:
            return table.primary_key.columns[0]
        return table.columns[0].name

    # -- identity / versions ----------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def placement(self, table_name: str) -> Optional[Placement]:
        return self.placements.get(table_name.lower())

    def table_keys(self) -> list[str]:
        return sorted(self.placements)

    def total_rows(self, table_name: str) -> int:
        return sum(node.row_count(table_name) for node in self.shards)

    def average_row_bytes(self, table_name: str) -> float:
        return self.table_row_bytes.get(table_name.lower(), 0.0)

    def storage_kind(self, table_name: str) -> str:
        """The shards' storage layout (what a single node would be running)."""
        return self.shards[0].table(table_name).storage.kind

    def table_versions(self, table_name: str) -> tuple[int, ...]:
        """Per-shard modification counters: the cache-invalidation vector."""
        return tuple(node.table(table_name).modification_counter
                     for node in self.shards if node.database.has_table(table_name))

    @property
    def epoch(self) -> int:
        """Sum of every shard's snapshot epoch (monotonic under any write)."""
        return sum(node.database.epoch for node in self.shards)

    # -- DML ---------------------------------------------------------------

    def insert(self, table_name: str, values: dict[str, Any]) -> int:
        """Route one row to its shard; returns the shard id it landed on."""
        key = self.coordinator.table(table_name).name.lower()
        placement = self.placements[key]
        row = {name.lower(): value for name, value in values.items()}
        with self._dml_lock:
            shard = placement.shard_of(row)
            sequence = self._next_sequence.get(key, 0)
            self._next_sequence[key] = sequence + 1
            self.shards[shard].insert(table_name, values, sequence)
            # Children derived from this table must route future rows
            # with the new key to the same shard.
            for child in self.placements.values():
                if (isinstance(child, DerivedPlacement)
                        and child.parent_table == key):
                    child.route[row.get(child.column)] = shard
        _ROUTED_ROWS.inc()
        return shard

    def delete_where(self, table_name: str,
                     predicate: Callable[[dict[str, Any]], bool]) -> int:
        return sum(node.delete_where(table_name, predicate)
                   for node in self.shards)

    # -- gather (data-shipping fallback) -----------------------------------

    def gathered_rows(self, table_name: str
                      ) -> Iterator[tuple[int, dict[str, Any]]]:
        """All shards' (sequence, row) pairs merged into global order."""
        streams = [node.iter_sequenced_rows(table_name) for node in self.shards]
        return heapq.merge(*streams, key=lambda pair: pair[0])

    def ensure_local(self, table_names: Iterable[str]) -> int:
        """Materialise shard data into the coordinator's tables.

        Each table is rebuilt only when its per-shard modification
        counters moved since the last gather; rows arrive in global
        sequence order, so the coordinator copy — including every
        index's duplicate-key ordering — is indistinguishable from the
        original single-node load.  Returns the number of tables
        (re)gathered.
        """
        with self._gather_lock:
            return self._ensure_local_locked(table_names)

    def _ensure_local_locked(self, table_names: Iterable[str]) -> int:
        gathered = 0
        for name in table_names:
            if not self.coordinator.has_table(name):
                continue
            table = self.coordinator.table(name)
            key = table.name.lower()
            if key not in self.placements:
                continue
            versions = self.table_versions(name)
            if self._gathered.get(key) == versions:
                continue
            if key in self._gathered:
                self.gather_invalidations += 1
            with lock_tables([(table, "write")]):
                table.truncate()
                for _sequence, row in self.gathered_rows(name):
                    table.insert(row, defer_index_sort=True, skip_fk=True)
                    self.rows_gathered += 1
                table.rebuild_indexes()
            self._gathered[key] = versions
            self.gather_count += 1
            gathered += 1
        return gathered

    def first_row(self, table_name: str) -> Optional[dict[str, Any]]:
        """The globally first row (sequence 0) of a table, if any."""
        for _sequence, row in self.gathered_rows(table_name):
            return row
        return None

    # -- durability --------------------------------------------------------

    CLUSTER_MANIFEST = "CLUSTER.json"

    def make_durable(self, path: str | os.PathLike, *,
                     fsync: bool = False) -> dict[str, Any]:
        """Attach the whole cluster to an on-disk directory tree.

        Each shard gets its own durable directory (WAL + checkpoints);
        the coordinator is checkpoint-only (``log_dml=False``) — its
        gather traffic re-materialises shard data that is already
        durable on the shards, and logging every truncate/refill would
        swamp the log for state recovery can rebuild anyway.  The
        cluster manifest records the static partitioning facts
        (scheme, columns, boundaries); dynamic facts — derived routes,
        next sequence numbers — are recomputed from the shards on open.
        """
        root = os.fspath(path)
        os.makedirs(root, exist_ok=True)
        coordinator_manager = DurabilityManager.attach(
            self.coordinator, os.path.join(root, "coordinator"),
            fsync=fsync, log_dml=False, checkpoint=False)
        shard_managers = [
            node.make_durable(os.path.join(root, f"shard-{node.shard_id}"),
                              fsync=fsync, checkpoint=False)
            for node in self.shards]
        self.durability = {"path": root, "coordinator": coordinator_manager,
                           "shards": shard_managers}
        self.checkpoint()
        return self.durability

    def checkpoint(self) -> dict[str, Any]:
        """Checkpoint the coordinator and every shard; rewrite the
        cluster manifest last (it only holds static facts, but keeping
        it newest-on-disk makes the directory self-describing)."""
        if self.durability is None:
            raise RecoveryError("cluster is not durable (call make_durable)")
        reports = {"coordinator": self.durability["coordinator"].checkpoint(),
                   "shards": [manager.checkpoint()
                              for manager in self.durability["shards"]]}
        manifest = {
            "format_version": 1,
            "shards": self.shard_count,
            "scheme": self.scheme,
            "table_row_bytes": self.table_row_bytes,
            "placements": {key: self._placement_entry(placement)
                           for key, placement in self.placements.items()},
        }
        root = self.durability["path"]
        tmp = os.path.join(root, self.CLUSTER_MANIFEST + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        os.replace(tmp, os.path.join(root, self.CLUSTER_MANIFEST))
        return reports

    @staticmethod
    def _placement_entry(placement: Placement) -> dict[str, Any]:
        entry = {"scheme": placement.scheme, "table": placement.table_name,
                 "column": placement.column, "shards": placement.shard_count}
        if isinstance(placement, RangePlacement):
            entry["boundaries"] = list(placement.boundaries)
        if isinstance(placement, DerivedPlacement):
            entry["parent"] = placement.parent_table
        return entry

    @staticmethod
    def _placement_from_entry(entry: dict[str, Any]) -> Placement:
        scheme = entry["scheme"]
        if scheme == "hash":
            return HashPlacement(entry["table"], entry["column"], entry["shards"])
        if scheme in ("range", "zone", "htm"):
            placement_cls = {"range": RangePlacement, "zone": ZonePlacement,
                             "htm": HtmPlacement}[scheme]
            return placement_cls(entry["table"], entry["column"],
                                 entry["shards"], entry["boundaries"])
        if scheme == "derived":
            # The key→shard route is dynamic state; open_durable rebuilds
            # it by scanning the recovered parent tables.
            return DerivedPlacement(entry["table"], entry["column"],
                                    entry["shards"], entry["parent"], {})
        raise RecoveryError(f"unknown placement scheme {scheme!r}")

    @classmethod
    def open_durable(cls, path: str | os.PathLike, *,
                     fsync: bool = False) -> "ShardCluster":
        """Reopen a durable cluster: recover the coordinator and every
        shard (each replaying its own WAL tail), then recompute the
        dynamic routing state from the recovered data."""
        root = os.fspath(path)
        manifest_path = os.path.join(root, cls.CLUSTER_MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise RecoveryError(f"no cluster at {root!r} (missing "
                                f"{cls.CLUSTER_MANIFEST})")
        coordinator_manager = DurabilityManager.open(
            os.path.join(root, "coordinator"), fsync=fsync, log_dml=False)
        nodes: list[ShardNode] = []
        shard_managers: list[DurabilityManager] = []
        for shard_id in range(manifest["shards"]):
            node, manager = ShardNode.recover(
                shard_id, os.path.join(root, f"shard-{shard_id}"), fsync=fsync)
            nodes.append(node)
            shard_managers.append(manager)
        placements = {key: cls._placement_from_entry(entry)
                      for key, entry in manifest["placements"].items()}
        cluster = cls(coordinator_manager.database, nodes, placements,
                      manifest["scheme"])
        cluster.table_row_bytes = dict(manifest["table_row_bytes"])
        cluster.durability = {"path": root, "coordinator": coordinator_manager,
                              "shards": shard_managers}
        # Recompute the dynamic facts the manifest deliberately omits.
        for key in placements:
            highest = -1
            for node in nodes:
                sequences = node.sequence_list(key)
                if sequences:
                    highest = max(highest, max(sequences))
            cluster._next_sequence[key] = highest + 1
        for placement in placements.values():
            if not isinstance(placement, DerivedPlacement):
                continue
            parent_key = placement.parent_table
            column = placement.column
            for node in nodes:
                if not node.database.has_table(parent_key):
                    continue
                for row in node.table(parent_key).storage.iter_dicts():
                    placement.route[row.get(column)] = node.shard_id
        return cluster

    def close_durable(self) -> None:
        """Release every WAL handle (checkpoint first for a clean reopen)."""
        if self.durability is None:
            return
        self.durability["coordinator"].close()
        for manager in self.durability["shards"]:
            manager.close()
        self.durability = None

    # -- executor / statistics --------------------------------------------

    @property
    def executor(self):
        """The cluster's scatter-gather executor (created lazily)."""
        if self._executor is None:
            from .executor import ClusterExecutor

            self._executor = ClusterExecutor(self)
        return self._executor

    def size_report(self) -> list[dict[str, Any]]:
        """Per-table record counts and bytes summed across the shards."""
        report = []
        for key in self.table_keys():
            table_name = self.coordinator.table(key).name
            records = self.total_rows(key)
            data_bytes = sum(node.table(key).data_bytes for node in self.shards)
            index_bytes = sum(node.table(key).index_bytes() for node in self.shards)
            report.append({"table": table_name, "records": records,
                           "data_bytes": data_bytes, "index_bytes": index_bytes,
                           "total_bytes": data_bytes + index_bytes})
        return report

    def statistics(self) -> dict[str, Any]:
        """The ``site_statistics()["cluster"]`` payload."""
        per_shard = [
            {"shard": node.shard_id,
             "rows": sum(node.row_count(key) for key in self.table_keys()),
             "epoch": node.database.epoch}
            for node in self.shards]
        payload: dict[str, Any] = {
            "shards": self.shard_count,
            "partition": self.scheme,
            "placements": {key: self.placements[key].describe()
                           for key in self.table_keys()},
            "per_shard": per_shard,
            "epoch": self.epoch,
            "gather": {
                "tables_materialized": len(self._gathered),
                "gathers": self.gather_count,
                "invalidations": self.gather_invalidations,
                "rows_gathered": self.rows_gathered,
            },
        }
        if self._executor is not None:
            payload.update(self._executor.statistics())
        return payload


def prune_with_statistics(cluster: ShardCluster, table_name: str,
                          column: str, low: Any, high: Any) -> set[int]:
    """Shards whose ANALYZE min/max for ``column`` intersect [low, high].

    This is the statistics-driven half of partition pruning: even when a
    predicate is not on the partition column, a shard whose observed
    value range is disjoint from the predicate's range cannot contribute
    rows.  Shards without statistics — or with *stale* statistics, i.e.
    any DML since the snapshot, which could have introduced values
    outside the recorded min/max — are conservatively kept.
    """
    survivors: set[int] = set()
    column = column.lower()
    for node in cluster.shards:
        table = node.table(table_name)
        statistics = node.database.table_statistics(table_name)
        if statistics is None or statistics.is_stale(table):
            survivors.add(node.shard_id)
            continue
        column_stats = statistics.column(column)
        if column_stats is None:
            survivors.add(node.shard_id)
            continue
        minimum, maximum = column_stats.minimum, column_stats.maximum
        if minimum is None or maximum is None:
            # Only NULLs (or no rows at all) at snapshot time: no
            # comparison predicate can match any of this shard's rows.
            continue
        try:
            if low is not None and low is not NULL and maximum < low:
                continue
            if high is not None and high is not NULL and minimum > high:
                continue
        except TypeError:
            survivors.add(node.shard_id)
            continue
        survivors.add(node.shard_id)
    return survivors
