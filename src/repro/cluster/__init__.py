"""The sharded cluster subsystem: partitioned storage, distributed
planning and scatter-gather parallel execution.

A :class:`ShardCluster` partitions one loaded engine database across N
in-process :class:`ShardNode`\\ s (hash, declination-zone or HTM-range
placement), a :class:`ClusterPlanner` rewrites distributable queries
into per-shard fragments plus a merge stage, and a
:class:`ClusterExecutor` scatters the fragments over a thread pool and
merges the streams back into single-node-identical results.  The
:class:`ClusterSession` is the drop-in SQL entry point the SkyServer
facade and the serving pool use when a cluster is attached.

See ``src/repro/cluster/README.md`` for the architecture.
"""

from .executor import ClusterExecutor, ClusterSession
from .partition import (DerivedPlacement, HashPlacement, HtmPlacement,
                        Placement, RangePlacement, ZonePlacement, colocated,
                        quantile_boundaries, stable_hash)
from .planner import (ClusterPlan, ClusterPlanner, CoPartitionedJoinPlan,
                      FallbackPlan, SingleTablePlan, candidate_shards)
from .shard import ShardCluster, ShardNode, prune_with_statistics

__all__ = [
    "ShardCluster",
    "ShardNode",
    "Placement",
    "HashPlacement",
    "RangePlacement",
    "ZonePlacement",
    "HtmPlacement",
    "DerivedPlacement",
    "colocated",
    "stable_hash",
    "quantile_boundaries",
    "ClusterPlanner",
    "ClusterPlan",
    "SingleTablePlan",
    "CoPartitionedJoinPlan",
    "FallbackPlan",
    "candidate_shards",
    "prune_with_statistics",
    "ClusterExecutor",
    "ClusterSession",
]
