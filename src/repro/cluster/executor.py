"""Scatter-gather execution of cluster plans.

Fragments run on a shared thread pool, one per surviving shard, each
under the shard table's read lock (the same
:mod:`repro.engine.concurrency` discipline the serving pool uses).  A
fragment emits rows tagged with a **merge key** — the global sequence
for scans, ``(index key rank…, sequence)`` for index access paths, plus
the inner match ordinal for joins — and the coordinator k-way merges
the shard streams by that key, which reproduces the single-node
engine's emission order exactly.  Aggregates ship as partial states
(COUNT/SUM/MIN/MAX merge directly; AVG merges as sum+count pairs) with
per-group first-seen tags so merged groups surface in single-node
first-seen order; aggregates whose result is order-sensitive (floating
SUM/AVG, DISTINCT) fall back to gathering the tagged aggregate *inputs*
and folding them in merged order, trading transfer for bit-identical
results.  TOP-N re-sorts at the coordinator, DISTINCT unions in merged
order, and anything a fragment cannot express falls back to the
row-path gather executed by the unmodified single-node engine.

``simulated_scan_mbps`` models the per-shard disk bandwidth of the
paper's scan-bound hardware (Figure 15): each fragment sleeps for the
time its bytes would take to stream off one shard's disks, so the
scatter-gather overlap — the reason to shard at all — shows up in wall
clock even on a single-CPU host.  It is off (None) by default.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from typing import Any, Iterator, Optional, Sequence

from ..engine.batch import ColumnBatch
from ..engine.compile import (VectorCompileError, compile_expression,
                              compile_vector_predicate,
                              compile_vector_projection)
from ..engine.errors import QueryLimitExceeded, SQLSyntaxError
from ..engine.expressions import (ColumnRef, Expression, RowScope, Star)
from ..engine.index import _KeyWrapper
from ..engine.operators import (ExecutionStatistics, QueryResult, _AggState,
                                _SortKey, _apply_scan_predicate,
                                _create_table_for_rows, _hashable,
                                _zone_predicates, _zone_skips,
                                evaluate_projected)
from ..engine.segments import compile_zone_predicate, runtime_range_zone
from ..engine.planner import Planner
from ..engine.sql import SqlSession, parse_batch
from ..engine.sql.ast import (AnalyzeStatement, DeclareStatement,
                              SelectStatement, SetStatement)
from ..engine.sql.session import PlanCache, StatementResult
from ..engine.types import NULL, DataType
from ..telemetry.trace import TRACER
from .planner import (ClusterPlan, ClusterPlanner, CoPartitionedJoinPlan,
                      FallbackPlan, FragmentRelation, SingleTablePlan,
                      candidate_shards)
from .shard import ShardCluster

#: Aggregate argument column types whose SUM/AVG partials merge exactly
#: (integer addition is associative; float addition is not).
_EXACT_SUM_TYPES = (DataType.INTEGER, DataType.BIGINT, DataType.BOOLEAN)


class ClusterPlanHandle:
    """Duck-typed stand-in for a PhysicalPlan on cluster results.

    The EXPLAIN text is rendered lazily: almost no caller reads
    ``result.plan``, and rendering re-runs partition pruning.
    """

    def __init__(self, render):
        self._render = render
        self._text: Optional[str] = None

    def explain(self) -> str:
        if self._text is None:
            self._text = self._render()
        return self._text


class _Fragment:
    """One shard's contribution to a distributed query."""

    __slots__ = ("rows", "groups", "statistics")

    def __init__(self) -> None:
        #: Tagged output: list of (merge key, sort values|None, row dict)
        #: for row fragments, or (merge key, group key, argument values)
        #: for ordered-aggregate input fragments.
        self.rows: list[tuple] = []
        #: Partial aggregation: group key -> [min merge key, [_AggState, ...]].
        self.groups: dict[tuple, list] = {}
        self.statistics = ExecutionStatistics()


class _ShardJoinFilter:
    """Shard-local runtime join filter for a co-partitioned join.

    Built from the inner (build) side's exact key set after the shard's
    hash table is complete, and pushed sideways into the drive scan of
    the *same* shard — co-partitioning guarantees every drive row's
    matches are shard-local, so the shard's own build keys are the full
    truth for its drive rows.  Pruning is sound by construction: a drive
    row whose key is NULL or absent from the key set can never survive
    the exact hash lookup that follows, and a sealed segment whose zone
    range misses [min(keys), max(keys)] holds no such key (tombstoned
    rows only shrink the live set the zone bounds).  An empty build
    prunes the entire drive scan.
    """

    __slots__ = ("column", "keys", "zone_fn")

    def __init__(self, column: str, keys: set, zone_fn) -> None:
        self.column = column
        self.keys = keys
        self.zone_fn = zone_fn

    def prunes_segment(self, segment) -> bool:
        if not self.keys:
            return True
        return self.zone_fn is not None and not self.zone_fn(segment)[0]

    def matches(self, value) -> bool:
        return value is not NULL and value in self.keys

    def filter_selection(self, batch: ColumnBatch) -> tuple[list[int], int]:
        """(kept positions, pruned count) for a drive-scan batch."""
        column = batch.columns.get(self.column)
        if column is None:
            return batch.selection, 0
        mask = batch.masks.get(self.column)
        keys = self.keys
        kept = [position for position in batch.selection
                if not (mask is not None and mask[position])
                and column[position] in keys]
        return kept, len(batch.selection) - len(kept)


class ClusterExecutor:
    """Runs cluster plans over the shard pool and merges the streams."""

    def __init__(self, cluster: ShardCluster, *,
                 max_workers: Optional[int] = None,
                 simulated_scan_mbps: Optional[float] = None):
        self.cluster = cluster
        #: Shard fragments run on the process-wide shared worker pool
        #: (the same one morsel-parallel scans and the serving pool
        #: lease from), so a sharded cluster under a parallel serving
        #: workload cannot oversubscribe the machine.  ``max_workers``
        #: bounds this executor's lease request, not a private pool.
        from ..engine.parallel import get_worker_pool

        self._pool = get_worker_pool()
        self._fragment_workers = max_workers or max(
            1, min(cluster.shard_count, 8))
        #: Per-shard simulated sequential-scan bandwidth (MB/s); None = off.
        self.simulated_scan_mbps = simulated_scan_mbps
        #: Sideways information passing for co-partitioned joins: after a
        #: shard builds its inner hash table, the build keys prune the
        #: shard's own drive scan.  Results are byte-identical either way.
        self.enable_runtime_filters = True
        self._mutex = threading.Lock()
        self.distributed_queries = 0
        self.copartitioned_queries = 0
        self.fallback_queries = 0
        self.fragments_executed = 0
        self.fragments_pruned = 0
        self.rows_merged = 0
        self.groups_merged = 0
        self.partial_merges = 0
        self.ordered_aggregate_gathers = 0
        self.topn_resorts = 0
        self.simulated_io_seconds = 0.0

    def _count(self, **deltas: float) -> None:
        with self._mutex:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    # -- entry point -------------------------------------------------------

    def execute_plan(self, plan: ClusterPlan, variables: dict[str, Any], *,
                     row_limit: Optional[int] = None,
                     time_limit_seconds: Optional[float] = None) -> QueryResult:
        assert not isinstance(plan, FallbackPlan)
        evaluation = self.cluster.coordinator.evaluation_context(variables)
        if isinstance(plan, SingleTablePlan):
            relations = [plan.relation]
            self._count(distributed_queries=1)
        else:
            assert isinstance(plan, CoPartitionedJoinPlan)
            relations = [plan.drive, plan.inner]
            self._count(copartitioned_queries=1)
        survivors = set(range(self.cluster.shard_count))
        for relation in relations:
            survivors &= candidate_shards(self.cluster, relation, evaluation)
        pruned = self.cluster.shard_count - len(survivors)
        self._count(fragments_pruned=pruned, fragments_executed=len(survivors))

        started = time.perf_counter()
        # Fragments run on pool threads where this thread's span stack
        # is invisible — capture the parent span here and pass it
        # across explicitly so per-shard spans join the query's trace.
        tracer = TRACER
        parent_span = tracer.current() if tracer.enabled else None
        with self._pool.lease(self._fragment_workers) as grant:
            fragments = list(grant.ordered_map(
                lambda shard_id: self._run_fragment(shard_id, plan, variables,
                                                    parent_span=parent_span),
                sorted(survivors)))

        statistics = ExecutionStatistics()
        for fragment in fragments:
            statistics.rows_scanned += fragment.statistics.rows_scanned
            statistics.bytes_scanned += fragment.statistics.bytes_scanned
            statistics.batches_processed += fragment.statistics.batches_processed
            statistics.batch_rows += fragment.statistics.batch_rows
            statistics.exprs_compiled += fragment.statistics.exprs_compiled
            statistics.segments_scanned += fragment.statistics.segments_scanned
            statistics.segments_skipped += fragment.statistics.segments_skipped
            statistics.runtime_filter_segments_pruned += \
                fragment.statistics.runtime_filter_segments_pruned
            statistics.runtime_filter_rows_pruned += \
                fragment.statistics.runtime_filter_rows_pruned

        if tracer.enabled:
            with tracer.span("merge", parent=parent_span,
                             fragments=len(fragments)) as span:
                if plan.is_aggregate:
                    rows = self._merge_aggregate(plan, fragments, evaluation)
                else:
                    rows = self._merge_rows(plan, fragments)
                span.attributes["rows"] = len(rows)
        elif plan.is_aggregate:
            rows = self._merge_aggregate(plan, fragments, evaluation)
        else:
            rows = self._merge_rows(plan, fragments)
        self._count(rows_merged=len(rows))

        if plan.into:
            table = _create_table_for_rows(self.cluster.coordinator, plan.into,
                                           rows)
            for row in rows:
                table.insert(row, defer_index_sort=True)
            table.rebuild_indexes()
        if row_limit is not None and len(rows) > row_limit:
            raise QueryLimitExceeded(
                f"query exceeded the public row limit of {row_limit} rows",
                limit_kind="rows")
        elapsed = time.perf_counter() - started
        if time_limit_seconds is not None and elapsed > time_limit_seconds:
            raise QueryLimitExceeded(
                f"query exceeded the public time limit of {time_limit_seconds} s",
                limit_kind="time")
        statistics.rows_returned = len(rows)
        statistics.elapsed_seconds = elapsed
        columns = plan.query.output_names() or (
            list(rows[0].keys()) if rows else [])
        frozen_variables = dict(variables) if variables else {}
        handle = ClusterPlanHandle(
            lambda: self.explain_plan(plan, frozen_variables))
        return QueryResult(columns=columns, rows=rows, statistics=statistics,
                           plan=handle)

    # -- fragment execution (runs on the pool, one call per shard) ---------

    def _run_fragment(self, shard_id: int, plan: ClusterPlan,
                      variables: dict[str, Any],
                      parent_span=None) -> _Fragment:
        tracer = TRACER
        if tracer.enabled:
            with tracer.span("fragment", parent=parent_span,
                             shard=shard_id) as span:
                fragment = self._run_fragment_inner(shard_id, plan, variables)
                span.attributes["rows_scanned"] = (
                    fragment.statistics.rows_scanned)
                return fragment
        return self._run_fragment_inner(shard_id, plan, variables)

    def _run_fragment_inner(self, shard_id: int, plan: ClusterPlan,
                            variables: dict[str, Any]) -> _Fragment:
        shard = self.cluster.shards[shard_id]
        evaluation = self.cluster.coordinator.evaluation_context(variables)
        fragment = _Fragment()
        if isinstance(plan, SingleTablePlan):
            table = shard.table(plan.relation.table_name)
            with table.lock.read():
                self._run_single(shard, plan, evaluation, fragment)
        else:
            assert isinstance(plan, CoPartitionedJoinPlan)
            drive = shard.table(plan.drive.table_name)
            inner = shard.table(plan.inner.table_name)
            from ..engine.concurrency import read_locks

            with read_locks([drive, inner]):
                self._run_join(shard, plan, evaluation, fragment)
        self._simulate_io(fragment.statistics.bytes_scanned)
        return fragment

    def _simulate_io(self, bytes_scanned: int) -> None:
        if not self.simulated_scan_mbps or bytes_scanned <= 0:
            return
        seconds = bytes_scanned / (self.simulated_scan_mbps * 1.0e6)
        self._count(simulated_io_seconds=seconds)
        time.sleep(seconds)

    # -- single-table fragments -------------------------------------------

    def _run_single(self, shard, plan: SingleTablePlan, evaluation,
                    fragment: _Fragment) -> None:
        if plan.is_aggregate:
            mode = self._aggregate_mode(plan)
            if mode == "partial" and self._scalar_vector_aggregate(
                    shard, plan, evaluation, fragment):
                return
            self._aggregate_fragment(
                shard, plan, evaluation, fragment, mode,
                self._iter_single(shard, plan.relation, evaluation),
                scope_binder=self._single_binder(plan.relation))
            return
        self._row_fragment(
            shard, plan, evaluation, fragment,
            self._iter_single(shard, plan.relation, evaluation),
            scope_binder=self._single_binder(plan.relation))

    @staticmethod
    def _single_binder(relation: FragmentRelation):
        binding = relation.binding

        def bind(scope: RowScope, payload) -> None:
            scope.bind(binding, payload)

        return bind

    def _iter_single(self, shard, relation: FragmentRelation, evaluation,
                     runtime_filter: Optional[_ShardJoinFilter] = None
                     ) -> Iterator[tuple[tuple, dict[str, Any]]]:
        """(merge key, row) pairs in this shard's access-path order."""
        table = shard.table(relation.table_name)
        sequences = shard.sequence_list(relation.table_name)
        access = relation.access
        if access.kind == "scan":
            yield from self._iter_scan(shard, relation, evaluation,
                                       runtime_filter)
            return
        index = self._find_index(table, access.index_name)
        if index is None:
            # The shard lost the index (dropped after planning): degrade
            # to a scan — the caller's merge keys would be inconsistent,
            # so surface loudly instead.
            raise RuntimeError(
                f"shard {shard.shard_id} is missing index {access.index_name!r} "
                f"on {relation.table_name}")
        predicate = (compile_expression(access.predicate, evaluation)
                     if access.predicate is not None else None)
        scope = RowScope()
        binding = relation.binding
        row_bytes = int(table.average_row_bytes())
        if access.kind == "covering":
            row_ids: Iterator[int] = index.scan()
        else:
            low = self._bound_values(access.low, evaluation)
            high = self._bound_values(access.high, evaluation)
            row_ids = index.range(low, high)
        scanned = 0
        try:
            for row_id in row_ids:
                row = table.get_row(row_id)
                if row is None:
                    continue
                scanned += 1
                if predicate is not None:
                    scope.bind(binding, row)
                    if predicate(scope) is not True:
                        continue
                rank = _KeyWrapper(index.key_for_row(row))._ranked
                yield (rank, sequences[row_id]), row
        finally:
            # Runs on close() too (a consumer's TOP break), so abandoned
            # scans still account their rows/bytes (and simulated I/O).
            self._account_scan(relation, scanned, row_bytes)

    def _iter_scan(self, shard, relation: FragmentRelation, evaluation,
                   runtime_filter: Optional[_ShardJoinFilter] = None
                   ) -> Iterator[tuple[tuple, dict[str, Any]]]:
        table = shard.table(relation.table_name)
        sequences = shard.sequence_list(relation.table_name)
        predicate_expr = relation.access.predicate
        row_bytes = int(table.average_row_bytes())
        scanned = 0
        pruned = 0
        if table.storage.kind == "column":
            iterated = self._iter_scan_columnar(table, sequences, relation,
                                                evaluation, runtime_filter)
            if iterated is not None:
                yield from iterated
                return
        predicate = (compile_expression(predicate_expr, evaluation)
                     if predicate_expr is not None else None)
        scope = RowScope()
        binding = relation.binding
        try:
            for row_id, row in table.storage.iter_rows():
                scanned += 1
                if predicate is not None:
                    scope.bind(binding, row)
                    if predicate(scope) is not True:
                        continue
                if (runtime_filter is not None and not runtime_filter.matches(
                        row.get(runtime_filter.column, NULL))):
                    pruned += 1
                    continue
                yield (sequences[row_id],), row
        finally:
            self._account_scan(relation, scanned, row_bytes,
                               runtime_rows_pruned=pruned)

    def _iter_scan_columnar(self, table, sequences: Sequence[int],
                            relation: FragmentRelation, evaluation,
                            runtime_filter: Optional[_ShardJoinFilter] = None
                            ) -> Optional[Iterator[tuple[tuple, dict]]]:
        """Vectorized scan: batch predicate, then materialise survivors."""
        predicate_expr = relation.access.predicate
        predicate_fn = None
        if predicate_expr is not None:
            try:
                predicate_fn = compile_vector_predicate(
                    predicate_expr, evaluation, table, relation.binding)
            except VectorCompileError:
                return None
            predicate_fn.zone_predicate = compile_zone_predicate(
                predicate_expr, evaluation, table, relation.binding)
        column_names = [column.name.lower() for column in table.columns]

        def generate() -> Iterator[tuple[tuple, dict]]:
            storage = table.storage
            zone_fns = _zone_predicates(True, predicate_fn)
            scanned = 0
            segments_scanned = 0
            segments_skipped = 0
            runtime_segments = 0
            runtime_rows = 0
            try:
                for unit in storage.scan_units():
                    segment = unit.segment
                    if (segment is not None and zone_fns
                            and _zone_skips(zone_fns, segment)):
                        # Segment-granular pruning under the shard's
                        # placement ∩ statistics intersection: skipped
                        # segments pay neither decode nor simulated I/O.
                        segments_skipped += 1
                        continue
                    if (segment is not None and runtime_filter is not None
                            and runtime_filter.prunes_segment(segment)):
                        # Build-key range misses the segment's zone:
                        # skipped before decode, like static zone skips.
                        segments_skipped += 1
                        runtime_segments += 1
                        continue
                    selection = unit.selection()
                    if not selection:
                        continue
                    if segment is not None:
                        segments_scanned += 1
                    scanned += len(selection)
                    batch = ColumnBatch(unit.columns(), unit.masks(),
                                        selection, relation.binding)
                    if predicate_fn is not None:
                        batch.selection = _apply_scan_predicate(
                            predicate_fn, batch, selection, segment)
                    if runtime_filter is not None and batch.selection:
                        batch.selection, dropped = \
                            runtime_filter.filter_selection(batch)
                        runtime_rows += dropped
                    view = batch.row_view()
                    base = unit.base
                    for position in batch.selection:
                        view.index = position
                        row = {name: view[name] for name in column_names}
                        yield (sequences[base + position],), row
            finally:
                self._account_scan(relation, scanned,
                                   int(table.average_row_bytes()),
                                   segments_scanned=segments_scanned,
                                   segments_skipped=segments_skipped,
                                   runtime_segments_pruned=runtime_segments,
                                   runtime_rows_pruned=runtime_rows)

        return generate()

    #: Per-thread scan accounting sink (set around fragment iteration).
    _accounting = threading.local()

    def _account_scan(self, relation, scanned: int, row_bytes: int, *,
                      segments_scanned: int = 0,
                      segments_skipped: int = 0,
                      runtime_segments_pruned: int = 0,
                      runtime_rows_pruned: int = 0) -> None:
        fragment: Optional[_Fragment] = getattr(self._accounting, "fragment",
                                                None)
        if fragment is not None:
            fragment.statistics.rows_scanned += scanned
            fragment.statistics.bytes_scanned += scanned * row_bytes
            fragment.statistics.segments_scanned += segments_scanned
            fragment.statistics.segments_skipped += segments_skipped
            fragment.statistics.runtime_filter_segments_pruned += \
                runtime_segments_pruned
            fragment.statistics.runtime_filter_rows_pruned += \
                runtime_rows_pruned

    # -- join fragments ----------------------------------------------------

    def _run_join(self, shard, plan: CoPartitionedJoinPlan, evaluation,
                  fragment: _Fragment) -> None:
        drive_binding = plan.drive.binding
        inner_binding = plan.inner.binding

        def bind(scope: RowScope, payload) -> None:
            drive_row, inner_row = payload
            scope.bind(drive_binding, drive_row)
            scope.bind(inner_binding, inner_row)

        stream = self._iter_join(shard, plan, evaluation)
        if plan.is_aggregate:
            mode = self._aggregate_mode(plan)
            self._aggregate_fragment(shard, plan, evaluation, fragment, mode,
                                     stream, scope_binder=bind)
        else:
            self._row_fragment(shard, plan, evaluation, fragment, stream,
                               scope_binder=bind)

    def _iter_join(self, shard, plan: CoPartitionedJoinPlan, evaluation
                   ) -> Iterator[tuple[tuple, tuple]]:
        """(merge key, (drive row, inner row)) in single-node join order.

        The inner side is hashed (bucket lists in the inner access-path
        order, matching the single-node build order); the drive side
        streams in its access order, and each drive row's matches append
        the match ordinal to the merge key — matches for one drive row
        are always shard-local under co-partitioning, so the ordinal
        totally orders them across the cluster.
        """
        inner_scope = RowScope()
        inner_keys = [compile_expression(expression, evaluation)
                      for expression in plan.inner_keys]
        inner_binding = plan.inner.binding
        hash_table: dict[tuple, list[dict[str, Any]]] = {}
        for _tag, row in self._iter_single(shard, plan.inner, evaluation):
            inner_scope.bind(inner_binding, row)
            key = tuple(fn(inner_scope) for fn in inner_keys)
            if any(part is NULL for part in key):
                continue
            hash_table.setdefault(key, []).append(row)
        drive_scope = RowScope()
        merged_scope = RowScope()
        drive_keys = [compile_expression(expression, evaluation)
                      for expression in plan.drive_keys]
        residual = (compile_expression(plan.residual, evaluation)
                    if plan.residual is not None else None)
        drive_binding = plan.drive.binding
        runtime_filter = self._shard_join_filter(plan, hash_table)
        drive_stream = self._iter_single(shard, plan.drive, evaluation,
                                         runtime_filter)
        try:
            for drive_tag, drive_row in drive_stream:
                drive_scope.bind(drive_binding, drive_row)
                key = tuple(fn(drive_scope) for fn in drive_keys)
                if any(part is NULL for part in key):
                    continue
                for ordinal, inner_row in enumerate(hash_table.get(key, ())):
                    if residual is not None:
                        merged_scope.bind(drive_binding, drive_row)
                        merged_scope.bind(inner_binding, inner_row)
                        if residual(merged_scope) is not True:
                            continue
                    yield drive_tag + (ordinal,), (drive_row, inner_row)
        finally:
            drive_stream.close()

    def _shard_join_filter(self, plan: CoPartitionedJoinPlan,
                           hash_table: dict[tuple, list]
                           ) -> Optional[_ShardJoinFilter]:
        """Runtime filter over the shard's build keys, when sound to push.

        Requires a single bare-column drive key over a scan access path;
        the key set is exact (not a Bloom sketch — the shard already
        holds it), and the zone form only attaches when every key is a
        real number, since string or mixed-type bounds do not compose
        with numeric zone ranges.
        """
        if not self.enable_runtime_filters:
            return None
        if len(plan.drive_keys) != 1:
            return None
        key_expr = plan.drive_keys[0]
        if not isinstance(key_expr, ColumnRef):
            return None
        if plan.drive.access.kind != "scan":
            return None
        keys = {key[0] for key in hash_table}
        zone_fn = None
        if keys and all(isinstance(key, (int, float))
                        and not isinstance(key, bool)
                        and key == key for key in keys):
            zone_fn = runtime_range_zone(key_expr.name.lower(),
                                         min(keys), max(keys))
        return _ShardJoinFilter(key_expr.name.lower(), keys, zone_fn)

    # -- row fragments (project / sort keys / local TOP) -------------------

    def _row_fragment(self, shard, plan, evaluation, fragment: _Fragment,
                      stream: Iterator[tuple[tuple, Any]],
                      scope_binder) -> None:
        self._accounting.fragment = fragment
        try:
            scope = RowScope()
            items: list[tuple[Optional[str], Optional[Any], Optional[Star]]] = []
            for position, item in enumerate(plan.select):
                if isinstance(item.expression, Star):
                    items.append((None, None, item.expression))
                else:
                    items.append((item.output_name(position),
                                  compile_expression(item.expression, evaluation),
                                  None))
            sort_fns = [(compile_expression(expression, evaluation), descending)
                        for expression, descending in plan.order_by]
            local_top = (plan.top if not plan.order_by and not plan.distinct
                         else None)
            produced = 0
            for tag, payload in stream:
                scope_binder(scope, payload)
                output: dict[str, Any] = {}
                for name, fn, star in items:
                    if star is not None:
                        self._expand_star(star, plan, payload, output)
                    else:
                        output[name] = fn(scope)
                sort_values = ([_SortKey(fn(scope), descending)
                                for fn, descending in sort_fns]
                               if sort_fns else None)
                fragment.rows.append((tag, sort_values, output))
                produced += 1
                if local_top is not None and produced >= local_top:
                    break
        finally:
            # Close the stream while the accounting sink is still bound:
            # a TOP break above abandons the scan generators mid-flight,
            # and their finally blocks flush rows/bytes scanned.
            close = getattr(stream, "close", None)
            if close is not None:
                close()
            self._accounting.fragment = None

    def _expand_star(self, star: Star, plan, payload,
                     output: dict[str, Any]) -> None:
        if isinstance(plan, SingleTablePlan):
            rows = [(plan.relation.binding, payload)]
        else:
            rows = [(plan.drive.binding, payload[0]),
                    (plan.inner.binding, payload[1])]
        qualifier = (star.qualifier or "").lower()
        for binding, row in rows:
            if qualifier and qualifier != binding:
                continue
            for column, value in row.items():
                output.setdefault(column, value)

    # -- aggregate fragments ----------------------------------------------

    def _aggregate_mode(self, plan) -> str:
        """``"partial"`` when shard-side partials merge exactly.

        COUNT, MIN and MAX always do; SUM/AVG only over integer-typed
        columns whose accumulated total provably stays below 2**53
        (the running total is a float — see ``_AggState`` — so integer
        addition is associative only while every partial and the grand
        total are exactly representable; a bit-for-bit contract beats a
        partial-pushdown win); DISTINCT aggregates need the merged
        value stream.
        """
        for aggregate in plan.aggregates:
            if aggregate.distinct:
                return "ordered"
            if aggregate.func not in ("sum", "avg"):
                continue
            argument = aggregate.argument
            if argument is None:
                continue
            if not isinstance(argument, ColumnRef):
                return "ordered"
            column = self._argument_column(plan, argument)
            if column is None or column.dtype not in _EXACT_SUM_TYPES:
                return "ordered"
            if not self._sum_stays_exact(plan, argument):
                return "ordered"
        return "partial"

    def _sum_stays_exact(self, plan, argument: ColumnRef) -> bool:
        """True when |sum| over the column is provably < 2**53.

        Uses the coordinator's ANALYZE min/max and the cluster-wide row
        count: ``rows * max(|min|, |max|)`` bounds every partial and the
        grand total, so float accumulation of the integer values stays
        exact and therefore associative.  Without statistics the answer
        is conservative (ordered mode).
        """
        relations = ([plan.relation] if isinstance(plan, SingleTablePlan)
                     else [plan.drive, plan.inner])
        qualifier = (argument.qualifier or "").lower()
        for relation in relations:
            if qualifier and qualifier != relation.binding:
                continue
            table = self.cluster.coordinator.table(relation.table_name)
            if not table.has_column(argument.name):
                continue
            statistics = self.cluster.coordinator.table_statistics(
                relation.table_name)
            column_stats = (statistics.column(argument.name)
                            if statistics is not None else None)
            if (column_stats is None or column_stats.minimum is None
                    or column_stats.maximum is None):
                return False
            bound = max(abs(column_stats.minimum), abs(column_stats.maximum),
                        1)
            rows = self.cluster.total_rows(relation.table_name)
            if isinstance(plan, CoPartitionedJoinPlan):
                # Join output can multiply occurrences of a value.
                rows *= max(1, self.cluster.total_rows(
                    (plan.inner if relation is plan.drive
                     else plan.drive).table_name))
            return rows * bound < 2 ** 53
        return False

    def _argument_column(self, plan, argument: ColumnRef):
        relations = ([plan.relation] if isinstance(plan, SingleTablePlan)
                     else [plan.drive, plan.inner])
        qualifier = (argument.qualifier or "").lower()
        for relation in relations:
            if qualifier and qualifier != relation.binding:
                continue
            table = self.cluster.coordinator.table(relation.table_name)
            column = table.column(argument.name)
            if column is not None:
                return column
        return None

    def _aggregate_fragment(self, shard, plan, evaluation,
                            fragment: _Fragment, mode: str,
                            stream: Iterator[tuple[tuple, Any]],
                            scope_binder) -> None:
        self._accounting.fragment = fragment
        try:
            scope = RowScope()
            group_fns = [compile_expression(expression, evaluation)
                         for expression in plan.group_by]
            argument_fns = [compile_expression(aggregate.argument, evaluation)
                            if aggregate.argument is not None else None
                            for aggregate in plan.aggregates]
            if mode == "ordered":
                for tag, payload in stream:
                    scope_binder(scope, payload)
                    key = tuple(fn(scope) for fn in group_fns)
                    values = tuple(fn(scope) if fn is not None else 1
                                   for fn in argument_fns)
                    fragment.rows.append((tag, key, values))
                return
            groups = fragment.groups
            for tag, payload in stream:
                scope_binder(scope, payload)
                key = tuple(fn(scope) for fn in group_fns)
                entry = groups.get(key)
                if entry is None:
                    entry = [tag, [_AggState(aggregate)
                                   for aggregate in plan.aggregates]]
                    groups[key] = entry
                for state, fn in zip(entry[1], argument_fns):
                    state.update(fn(scope) if fn is not None else 1)
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()
            self._accounting.fragment = None

    def _scalar_vector_aggregate(self, shard, plan: SingleTablePlan,
                                 evaluation, fragment: _Fragment) -> bool:
        """Batch fast path: scalar aggregates over a columnar scan."""
        relation = plan.relation
        table = shard.table(relation.table_name)
        if (plan.group_by or relation.access.kind != "scan"
                or table.storage.kind != "column"):
            return False
        try:
            predicate_fn = None
            if relation.access.predicate is not None:
                predicate_fn = compile_vector_predicate(
                    relation.access.predicate, evaluation, table,
                    relation.binding)
                predicate_fn.zone_predicate = compile_zone_predicate(
                    relation.access.predicate, evaluation, table,
                    relation.binding)
            argument_fns = []
            for aggregate in plan.aggregates:
                if aggregate.distinct:
                    return False
                if aggregate.argument is None:
                    argument_fns.append((None, None))
                else:
                    fn, tag = compile_vector_projection(
                        aggregate.argument, evaluation, table, relation.binding)
                    argument_fns.append((fn, tag))
        except VectorCompileError:
            return False
        states = [_AggState(aggregate) for aggregate in plan.aggregates]
        storage = table.storage
        row_bytes = int(table.average_row_bytes())
        statistics = fragment.statistics
        zone_fns = _zone_predicates(True, predicate_fn)
        for unit in storage.scan_units():
            segment = unit.segment
            if (segment is not None and zone_fns
                    and _zone_skips(zone_fns, segment)):
                statistics.segments_skipped += 1
                continue
            selection = unit.selection()
            if not selection:
                continue
            if segment is not None:
                statistics.segments_scanned += 1
            statistics.rows_scanned += len(selection)
            statistics.bytes_scanned += len(selection) * row_bytes
            statistics.batches_processed += 1
            statistics.batch_rows += len(selection)
            batch = ColumnBatch(unit.columns(), unit.masks(), selection,
                                relation.binding)
            if predicate_fn is not None:
                selection = _apply_scan_predicate(predicate_fn, batch,
                                                  selection, segment)
                batch.selection = selection
            if not selection:
                continue
            for state, (fn, tag) in zip(states, argument_fns):
                if fn is None:
                    state.update_count(len(selection))
                else:
                    state.update_batch(fn(batch, selection), tag)
        if any(state.count for state in states):
            fragment.groups[()] = [(0,), states]
        return True

    # -- coordinator merges -------------------------------------------------

    def _merge_rows(self, plan, fragments: Sequence[_Fragment]
                    ) -> list[dict[str, Any]]:
        merged = heapq.merge(*[fragment.rows for fragment in fragments],
                             key=lambda entry: entry[0])
        entries = list(merged)
        if plan.order_by:
            # Stable: equal keys keep the merged (single-node) order.
            entries.sort(key=lambda entry: entry[1])
            self._count(topn_resorts=1 if plan.top is not None else 0)
        rows = [entry[2] for entry in entries]
        if plan.distinct:
            rows = _distinct_rows(rows)
        if plan.top is not None:
            rows = rows[:plan.top]
        return rows

    def _merge_aggregate(self, plan, fragments: Sequence[_Fragment],
                         evaluation) -> list[dict[str, Any]]:
        ordered_inputs = any(fragment.rows for fragment in fragments)
        groups: dict[tuple, list] = {}
        if ordered_inputs:
            self._count(ordered_aggregate_gathers=1)
            merged = heapq.merge(*[fragment.rows for fragment in fragments],
                                 key=lambda entry: entry[0])
            for tag, key, values in merged:
                entry = groups.get(key)
                if entry is None:
                    entry = [tag, [_AggState(aggregate)
                                   for aggregate in plan.aggregates]]
                    groups[key] = entry
                for state, value in zip(entry[1], values):
                    state.update(value)
        else:
            for fragment in fragments:
                for key, (tag, states) in fragment.groups.items():
                    entry = groups.get(key)
                    if entry is None:
                        groups[key] = [tag, states]
                        continue
                    if tag < entry[0]:
                        entry[0] = tag
                    for mine, theirs in zip(entry[1], states):
                        mine.merge_partial(theirs.partial_state())
                        self._count(partial_merges=1)
        if not groups and not plan.group_by:
            # Aggregates over an empty input still produce one row.
            groups[()] = [(0,), [_AggState(aggregate)
                                 for aggregate in plan.aggregates]]
        ordered_groups = sorted(groups.items(), key=lambda item: item[1][0])
        self._count(groups_merged=len(ordered_groups))

        group_rows: list[dict[str, Any]] = []
        for key, (_tag, states) in ordered_groups:
            row: dict[str, Any] = {}
            for expression, value in zip(plan.group_by, key):
                row[_group_key_name(expression)] = value
            for aggregate, state in zip(plan.aggregates, states):
                row[aggregate.result_key()] = state.result()
            group_rows.append(row)

        scope = RowScope()
        from ..engine.operators import OUTPUT_BINDING

        if plan.having is not None:
            kept = []
            for row in group_rows:
                scope.bind(OUTPUT_BINDING, row)
                if evaluate_projected(plan.having, scope, evaluation) is True:
                    kept.append(row)
            group_rows = kept
        if plan.order_by:
            decorated = []
            for row in group_rows:
                scope.bind(OUTPUT_BINDING, row)
                decorated.append(
                    ([_SortKey(evaluate_projected(expression, scope, evaluation),
                               descending)
                      for expression, descending in plan.order_by], row))
            decorated.sort(key=lambda pair: pair[0])
            group_rows = [row for _keys, row in decorated]
            self._count(topn_resorts=1 if plan.top is not None else 0)
        outputs = []
        for row in group_rows:
            scope.bind(OUTPUT_BINDING, row)
            output = {}
            for position, item in enumerate(plan.select):
                output[item.output_name(position)] = evaluate_projected(
                    item.expression, scope, evaluation)
            outputs.append(output)
        if plan.distinct:
            outputs = _distinct_rows(outputs)
        if plan.top is not None:
            outputs = outputs[:plan.top]
        return outputs

    # -- spatial scatter (the cone-search path) -----------------------------

    def cone_candidate_rows(self, ranges) -> list[dict[str, Any]]:
        """PhotoObj rows in any HTM cover range, pruned to covering shards.

        The placement metadata (HTM ranges directly; declination zones
        via per-shard statistics) prunes the scatter; each surviving
        shard answers through its own htmID index.
        """
        from .shard import prune_with_statistics

        placement = self.cluster.placement("PhotoObj")
        candidates = set(range(self.cluster.shard_count))
        spans = [(r.low, r.high) for r in ranges]
        if placement is not None and placement.column == "htmid":
            candidates &= placement.prune_ranges(spans)
        # A shard survives when ANY cover span intersects its (fresh)
        # htmID statistics; prune_with_statistics keeps shards with
        # stale or missing statistics conservatively.
        stats_survivors: set[int] = set()
        for low, high in spans:
            stats_survivors |= prune_with_statistics(
                self.cluster, "PhotoObj", "htmid", low, high)
            if candidates <= stats_survivors:
                break
        surviving = candidates & stats_survivors
        self._count(fragments_executed=len(surviving),
                    fragments_pruned=self.cluster.shard_count - len(surviving))
        rows: list[dict[str, Any]] = []
        with self._pool.lease(self._fragment_workers) as grant:
            for shard_rows in grant.ordered_map(
                    lambda shard_id: self._shard_candidates(shard_id, ranges),
                    sorted(surviving)):
                rows.extend(shard_rows)
        return rows

    def _shard_candidates(self, shard_id: int, ranges) -> list[dict[str, Any]]:
        from ..skyserver.spatial import _candidate_rows

        shard = self.cluster.shards[shard_id]
        table = shard.table("PhotoObj")
        with table.lock.read():
            return list(_candidate_rows(shard.database, ranges))

    # -- explain -----------------------------------------------------------

    def explain_plan(self, plan: ClusterPlan,
                     variables: Optional[dict[str, Any]] = None) -> str:
        evaluation = self.cluster.coordinator.evaluation_context(variables or {})
        lines: list[str] = []
        if isinstance(plan, SingleTablePlan):
            relations = [plan.relation]
        elif isinstance(plan, CoPartitionedJoinPlan):
            relations = [plan.drive, plan.inner]
        else:
            return f"Gather (fallback: {plan.reason})"
        survivors = set(range(self.cluster.shard_count))
        for relation in relations:
            survivors &= candidate_shards(self.cluster, relation, evaluation)
        pruned = self.cluster.shard_count - len(survivors)
        order = ("index" if relations[0].access.ordered_by_index
                 else "sequence")
        lines.append(f"Merge [order={order}] "
                     f"(shards={self.cluster.shard_count}, "
                     f"fragments={len(survivors)}, pruned={pruned})")
        if plan.is_aggregate:
            mode = self._aggregate_mode(plan)
            aggregates = ", ".join(a.sql() for a in plan.aggregates)
            lines.append(f"  {'Partial' if mode == 'partial' else 'Ordered'} "
                         f"Aggregate {aggregates}")
        if plan.top is not None:
            lines.append(f"  Top {plan.top} (re-sorted at coordinator)"
                         if plan.order_by else f"  Top {plan.top}")
        for shard_id in range(self.cluster.shard_count):
            mark = "" if shard_id in survivors else "  (pruned)"
            if isinstance(plan, SingleTablePlan):
                relation = plan.relation
                where = (f" WHERE {relation.access.predicate.sql()}"
                         if relation.access.predicate is not None else "")
                lines.append(f"  Shard[{shard_id}] {relation.access.describe()} "
                             f"{relation.table_name} AS {relation.binding}"
                             f"{where}{mark}")
            else:
                keys = ", ".join(
                    f"{d.sql()} = {i.sql()}"
                    for d, i in zip(plan.drive_keys, plan.inner_keys))
                lines.append(
                    f"  Shard[{shard_id}] Co-partitioned {plan.strategy} join "
                    f"{plan.drive.table_name} AS {plan.drive.binding} "
                    f"[{plan.drive.access.describe()}] ⋈ "
                    f"{plan.inner.table_name} AS {plan.inner.binding} "
                    f"ON {keys}{mark}")
        return "\n".join(lines)

    # -- introspection ------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        with self._mutex:
            return {
                "queries": {
                    "distributed": self.distributed_queries,
                    "copartitioned_joins": self.copartitioned_queries,
                    "fallback": self.fallback_queries,
                },
                "fragments": {
                    "executed": self.fragments_executed,
                    "pruned": self.fragments_pruned,
                },
                "merge": {
                    "rows_merged": self.rows_merged,
                    "groups_merged": self.groups_merged,
                    "partial_merges": self.partial_merges,
                    "ordered_aggregate_gathers": self.ordered_aggregate_gathers,
                    "topn_resorts": self.topn_resorts,
                },
                "simulated_io_seconds": round(self.simulated_io_seconds, 6),
            }

    def shutdown(self) -> None:
        # The worker pool is process-global and shared with the rest of
        # the stack (morsel scans, other clusters, the serving pool), so
        # tearing down one executor must not stop its threads.
        pass

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _find_index(table, name: Optional[str]):
        if name is None:
            return None
        for index_name, index in table.indexes.items():
            if index_name.lower() == name.lower():
                return index
        return None

    @staticmethod
    def _bound_values(bounds: Optional[list[Expression]], evaluation
                      ) -> Optional[list[Any]]:
        if bounds is None:
            return None
        scope = RowScope()
        return [compile_expression(expression, evaluation)(scope)
                for expression in bounds]


def _group_key_name(expression: Expression) -> str:
    if isinstance(expression, ColumnRef):
        return expression.name.lower()
    return expression.sql()


def _distinct_rows(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """First occurrence wins, in the (merged) input order — DistinctOp's keying."""
    seen: set = set()
    deduplicated: list[dict[str, Any]] = []
    for row in rows:
        key = tuple(sorted((name, _hashable(value))
                           for name, value in row.items()))
        if key in seen:
            continue
        seen.add(key)
        deduplicated.append(row)
    return deduplicated


# ---------------------------------------------------------------------------
# The cluster-aware SQL session
# ---------------------------------------------------------------------------

class ClusterSession:
    """Drop-in :class:`~repro.engine.sql.SqlSession` over a cluster.

    DECLARE/SET keep their variables in the wrapped coordinator session;
    SELECTs route through the distributed planner — distributable
    fragments scatter to the shards, everything else gathers its tables
    into the coordinator and runs on the unmodified single-node engine.
    ANALYZE refreshes every shard's statistics (the coordinator's
    snapshots are refreshed only for tables it actually holds, so the
    planner keeps costing against full-data statistics).
    """

    def __init__(self, cluster: ShardCluster, *,
                 row_limit: Optional[int] = None,
                 time_limit_seconds: Optional[float] = None,
                 parallelism: int = 1):
        self.cluster = cluster
        self.database = cluster.coordinator
        self.row_limit = row_limit
        self.time_limit_seconds = time_limit_seconds
        #: Morsel-parallel degree for coordinator-side (fallback/gather)
        #: plans; the distributed scatter-gather path parallelises over
        #: shards instead.  1 keeps the session byte-compatible with the
        #: pre-parallel behaviour.
        self.parallelism = max(1, parallelism)
        planner = (Planner(cluster.coordinator, parallelism=self.parallelism)
                   if self.parallelism > 1 else None)
        self.session = SqlSession(cluster.coordinator, row_limit=row_limit,
                                  time_limit_seconds=time_limit_seconds,
                                  planner=planner)
        self.planner = self.session.planner
        self.variables = self.session.variables
        self.plan_cache = self.session.plan_cache
        self.cluster_planner = ClusterPlanner(cluster)
        #: Fragment-plan cache: (normalised SQL, statement position) →
        #: (plan, coordinator schema version, per-table snapshot of
        #: every shard's modification counter at planning time).  A hit
        #: re-checks staleness **per shard** before reuse: shard-local
        #: DML bumps that shard's counter, the snapshot no longer
        #: matches, and the plan is re-derived from current statistics
        #: instead of shipping a shape chosen against stale ones.
        self._fragment_plans: "OrderedDict[tuple[str, int], tuple[ClusterPlan, int, dict[str, tuple]]]" = OrderedDict()
        self._fragment_plan_capacity = 128
        self.fragment_plan_hits = 0
        self.fragment_plan_misses = 0
        self.fragment_plan_invalidations = 0
        #: Telemetry: how the most recent SELECT was planned
        #: ("fragment-cache", "planned" or "fallback").
        self.last_plan_source = ""

    # -- SqlSession surface -------------------------------------------------

    def execute(self, sql_text: str) -> list[StatementResult]:
        statements = parse_batch(sql_text)
        if not statements:
            raise SQLSyntaxError("empty SQL batch")
        results: list[StatementResult] = []
        cache_key = PlanCache.normalize(sql_text)
        for position, statement in enumerate(statements):
            if isinstance(statement, DeclareStatement):
                for name in statement.names:
                    self.session.declare(name)
                results.append(StatementResult(statement, "declare"))
            elif isinstance(statement, SetStatement):
                assert statement.expression is not None
                context = self.database.evaluation_context(self.variables)
                value = statement.expression.evaluate(RowScope(), context)
                self.session.set_variable(statement.name, value)
                results.append(StatementResult(statement, "set",
                                               variable=statement.name,
                                               value=value))
            elif isinstance(statement, AnalyzeStatement):
                results.append(self._analyze(statement))
            elif isinstance(statement, SelectStatement):
                results.append(self._select(statement,
                                            (cache_key, position)))
            else:
                raise SQLSyntaxError(
                    f"unsupported statement type {type(statement).__name__}")
        return results

    def query(self, sql_text: str) -> QueryResult:
        results = self.execute(sql_text)
        for outcome in reversed(results):
            if outcome.kind == "select" and outcome.result is not None:
                return outcome.result
        raise SQLSyntaxError("batch contained no SELECT statement")

    def explain(self, sql_text: str, *, analyze: bool = False) -> str:
        if analyze:
            for outcome in self.execute(sql_text):
                if outcome.kind == "select" and outcome.result is not None:
                    return outcome.result.plan.explain()
            raise SQLSyntaxError("batch contained no SELECT statement")
        for statement in parse_batch(sql_text):
            if isinstance(statement, SelectStatement) and statement.query is not None:
                plan = self.cluster_planner.plan(statement.query)
                if isinstance(plan, FallbackPlan):
                    self._gather_for(plan)
                    header = (f"Gather (fallback: {plan.reason}) -> "
                              "coordinator plan:")
                    return header + "\n" + self.planner.plan(
                        statement.query).explain()
                return self.cluster.executor.explain_plan(plan, self.variables)
        raise SQLSyntaxError("batch contained no SELECT statement")

    def optimizer_statistics(self) -> dict[str, int]:
        return self.session.optimizer_statistics()

    def execution_mode_statistics(self) -> dict[str, int]:
        return self.session.execution_mode_statistics()

    def feedback_statistics(self) -> dict[str, int]:
        return self.session.feedback_statistics()

    # -- statement dispatch -------------------------------------------------

    def _analyze(self, statement: AnalyzeStatement) -> StatementResult:
        # Fresh statistics can change access-path choices everywhere, so
        # the whole fragment-plan cache is rebuilt on demand.
        self._fragment_plans.clear()
        names = ([statement.table] if statement.table
                 else sorted(self.cluster.table_keys()))
        analyzed: list[str] = []
        for name in names:
            for node in self.cluster.shards:
                if node.database.has_table(name):
                    node.database.analyze_table(name)
            if (self.database.has_table(name)
                    and (self.cluster.placement(name) is None
                         or self.database.table(name).row_count)):
                self.database.analyze_table(name)
            analyzed.append(name)
        return StatementResult(statement, "analyze", value=analyzed)

    def _gather_for(self, plan: FallbackPlan) -> None:
        tables = (plan.tables if plan.tables is not None
                  else self.cluster.table_keys())
        self.cluster.ensure_local(tables)

    def _plan_fragment(self, query, key: tuple[str, int]) -> ClusterPlan:
        """Plan ``query``, reusing a cached fragment plan only when every
        shard is provably unchanged since it was planned."""
        entry = self._fragment_plans.get(key)
        if entry is not None:
            plan, schema_version, versions = entry
            fresh = (schema_version == self.database.schema_version
                     and all(self.cluster.table_versions(name) == captured
                             for name, captured in versions.items()))
            if fresh:
                self._fragment_plans.move_to_end(key)
                self.fragment_plan_hits += 1
                self.last_plan_source = "fragment-cache"
                return plan
            # Some shard (or the coordinator catalog) changed under the
            # plan: one shard-local INSERT is enough to make the cached
            # shape's statistics-derived choices stale.
            del self._fragment_plans[key]
            self.fragment_plan_invalidations += 1
        self.fragment_plan_misses += 1
        self.last_plan_source = "planned"
        plan = self.cluster_planner.plan(query)
        tables = ClusterPlanner.plan_tables(plan)
        if tables and not plan.into:
            self._fragment_plans[key] = (
                plan, self.database.schema_version,
                {name: self.cluster.table_versions(name) for name in tables})
            while len(self._fragment_plans) > self._fragment_plan_capacity:
                self._fragment_plans.popitem(last=False)
        return plan

    def fragment_plan_statistics(self) -> dict[str, int]:
        """Fragment-plan cache counters for this session."""
        return {
            "entries": len(self._fragment_plans),
            "hits": self.fragment_plan_hits,
            "misses": self.fragment_plan_misses,
            "invalidations": self.fragment_plan_invalidations,
        }

    def _select(self, statement: SelectStatement,
                key: tuple[str, int]) -> StatementResult:
        assert statement.query is not None
        query = statement.query
        tracer = TRACER
        if tracer.enabled:
            with tracer.span("plan") as span:
                plan = self._plan_fragment(query, key)
                if isinstance(plan, FallbackPlan):
                    self.last_plan_source = "fallback"
                span.attributes["source"] = self.last_plan_source
        else:
            plan = self._plan_fragment(query, key)
            if isinstance(plan, FallbackPlan):
                self.last_plan_source = "fallback"
        if isinstance(plan, FallbackPlan):
            self.cluster.executor._count(fallback_queries=1)
            self._gather_for(plan)
            from ..engine.concurrency import read_locks

            names = (plan.tables if plan.tables is not None
                     else self.cluster.table_keys())
            tables = [self.database.table(name) for name in names
                      if self.database.has_table(name)]
            physical = self.session.planner.plan(query)
            # Hold the coordinator copies' read locks through execution
            # so a concurrent re-gather (which truncates) cannot be
            # observed mid-flight.  The gather above completed first —
            # never take these locks before gathering (read→write
            # upgrades are forbidden).
            with read_locks(tables):
                if tracer.enabled:
                    with tracer.span("execute", mode="fallback") as span:
                        result = physical.execute(
                            self.variables, row_limit=self.row_limit,
                            time_limit_seconds=self.time_limit_seconds)
                        span.attributes["rows"] = len(result.rows)
                else:
                    result = physical.execute(
                        self.variables, row_limit=self.row_limit,
                        time_limit_seconds=self.time_limit_seconds)
            if result.statistics.batches_processed:
                self.session.batch_executions += 1
                self.session.batches_processed += (
                    result.statistics.batches_processed)
            else:
                self.session.row_executions += 1
        else:
            if tracer.enabled:
                with tracer.span("execute", mode="distributed") as span:
                    result = self.cluster.executor.execute_plan(
                        plan, self.variables, row_limit=self.row_limit,
                        time_limit_seconds=self.time_limit_seconds)
                    span.attributes["rows"] = len(result.rows)
            else:
                result = self.cluster.executor.execute_plan(
                    plan, self.variables, row_limit=self.row_limit,
                    time_limit_seconds=self.time_limit_seconds)
            if result.statistics.batches_processed:
                self.session.batch_executions += 1
                self.session.batches_processed += (
                    result.statistics.batches_processed)
            else:
                self.session.row_executions += 1
        if result.statistics.morsels_dispatched:
            self.session.parallel_executions += 1
            self.session.morsels_dispatched += (
                result.statistics.morsels_dispatched)
        self.session.segments_scanned += result.statistics.segments_scanned
        self.session.segments_skipped += result.statistics.segments_skipped
        result.statistics.plan_cache_hits = 0
        result.statistics.plan_cache_misses = 1
        return StatementResult(statement, "select", result=result)
