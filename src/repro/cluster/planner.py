"""The distributed planner: logical queries → cluster plans.

The planner classifies every SELECT into one of three shapes:

* **single-table fragments** — scan→filter→project(→aggregate/top)
  chains over one base table (views folded down exactly as the engine's
  planner folds them).  The chain is shipped to every surviving shard
  and the coordinator merges the streams;
* **co-partitioned joins** — two-table equi-joins whose join key is
  co-located by the placement map (hash-on-key both sides, or a
  snowflake arm joined to its parent), executed shard-locally with a
  merge at the coordinator;
* **fallback** — everything else (table-valued functions, non-colocated
  or 3+-way joins).  The executor *gathers* the referenced tables into
  the coordinator in global order and runs the unmodified single-node
  engine there (data shipping instead of query shipping).

**Order parity.** The cluster's contract is byte-identical results, and
the single-node engine's row order is a function of the access path the
cost-based optimizer picks (a table scan emits in load order, an index
seek in key order) and of the join order/strategy (rows stream in the
drive side's order, with matches in build order).  The distributed
planner therefore *mirrors* the single-node optimizer's decisions: the
same cost formulas (:class:`repro.engine.planner.Planner` constants and
helper methods) evaluated against the same ANALYZE snapshots — the
coordinator keeps them — with the cluster-wide row counts standing in
for the (detached) coordinator tables' own.  The chosen access path
also fixes the **merge key** each fragment row carries: ``(sequence,)``
for scans, ``(index key rank…, sequence)`` for index paths, plus the
inner sequence for joins.

**Partition pruning** combines two sources, both applied per shard at
execution time: the placement metadata (hash owner for key equalities,
boundary intersection for range placements — including HTM cover ranges
from the spatial layer) and the per-shard ANALYZE statistics (a shard
whose observed min/max for a predicate column is disjoint from the
predicate's constant range cannot contribute rows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..engine.catalog import Database
from ..engine.expressions import (AggregateCall, BinaryOp, ColumnRef,
                                  Expression, RowScope, combine_conjuncts,
                                  extract_sargable)
from ..engine.index import BTreeIndex
from ..engine.logical import FunctionRef, LogicalQuery, SelectItem
from ..engine.planner import (Planner, _RelationInfo, collect_aggregates,
                              qualify_columns)
from .partition import colocated
from .shard import ShardCluster, prune_with_statistics

#: Sentinel matching the engine planner's "not a plan-time constant".
_UNKNOWN = object()


@dataclass
class AccessChoice:
    """The mirrored single-node access path for one fragment relation."""

    kind: str                                  # "scan" | "seek" | "covering"
    predicate: Optional[Expression]            # residual (seek) or full local predicate
    index_name: Optional[str] = None
    index_columns: tuple[str, ...] = ()
    low: Optional[list[Expression]] = None     # seek bounds (plan-time expressions)
    high: Optional[list[Expression]] = None
    estimated_rows: int = 1
    cost: float = 0.0

    @property
    def ordered_by_index(self) -> bool:
        return self.kind in ("seek", "covering")

    def describe(self) -> str:
        if self.kind == "scan":
            return "Shard Scan"
        if self.kind == "covering":
            return f"Shard Covering Index Scan {self.index_name}"
        return f"Shard Index Seek {self.index_name}"


@dataclass
class FragmentRelation:
    """One base relation of a distributed fragment."""

    table_name: str
    binding: str
    local_conjuncts: list[Expression]
    access: AccessChoice


@dataclass
class ClusterPlan:
    """Base class of the three plan shapes."""

    query: LogicalQuery

    kind = "fallback"


@dataclass
class _FragmentShape(ClusterPlan):
    """Shared projection/aggregation/ordering metadata of both fragment plans."""

    select: list[SelectItem] = field(default_factory=list)
    aggregates: list[AggregateCall] = field(default_factory=list)
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[tuple[Expression, bool]] = field(default_factory=list)
    top: Optional[int] = None
    distinct: bool = False
    into: Optional[str] = None

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates or self.group_by)


@dataclass
class SingleTablePlan(_FragmentShape):
    """A distributable single-table chain."""

    relation: FragmentRelation = None  # type: ignore[assignment]

    kind = "single"


@dataclass
class CoPartitionedJoinPlan(_FragmentShape):
    """A two-table equi-join that executes shard-locally."""

    drive: FragmentRelation = None      # type: ignore[assignment]
    inner: FragmentRelation = None      # type: ignore[assignment]
    drive_keys: list[Expression] = field(default_factory=list)
    inner_keys: list[Expression] = field(default_factory=list)
    residual: Optional[Expression] = None
    strategy: str = "hash"

    kind = "join"


@dataclass
class FallbackPlan(ClusterPlan):
    """Gather the referenced tables to the coordinator and run there."""

    tables: Optional[list[str]] = None     # None = every partitioned table
    reason: str = ""

    kind = "fallback"


class ClusterPlanner:
    """Builds :class:`ClusterPlan`\\ s for one cluster."""

    def __init__(self, cluster: ShardCluster):
        self.cluster = cluster
        #: The single-node planner whose constants, selectivity helpers
        #: and index-selection logic the mirrored cost decisions reuse —
        #: instantiated over the coordinator so statistics lookups hit
        #: the preserved ANALYZE snapshots.
        self.mirror = Planner(cluster.coordinator)

    @property
    def coordinator(self) -> Database:
        return self.cluster.coordinator

    @staticmethod
    def plan_tables(plan: ClusterPlan) -> list[str]:
        """Base tables of a distributable fragment plan.

        The session's fragment-plan cache validates a cached plan
        against the per-shard modification counters of exactly these
        tables (see :meth:`ShardCluster.table_versions`); fallback plans
        return ``[]`` and are never cached — their coordinator plans
        live in the wrapped session's own plan cache.
        """
        if isinstance(plan, SingleTablePlan):
            return [plan.relation.table_name]
        if isinstance(plan, CoPartitionedJoinPlan):
            return [plan.drive.table_name, plan.inner.table_name]
        return []

    # -- entry point -------------------------------------------------------

    def plan(self, query: LogicalQuery) -> ClusterPlan:
        relations = query.all_relations()
        if not relations:
            return FallbackPlan(query, tables=[], reason="no relations")
        if any(isinstance(ref, FunctionRef) for ref in relations):
            return FallbackPlan(query, tables=None,
                                reason="table-valued function")
        for ref in relations:
            if self.coordinator.functions.has_table_valued(ref.name):
                return FallbackPlan(query, tables=None,
                                    reason="table-valued function")
        try:
            infos = [self.mirror._resolve_relation(ref) for ref in relations]
        except Exception:
            return FallbackPlan(query, tables=None, reason="unresolvable relation")
        base_tables = [info.table.name for info in infos]
        unplaced = [name for name in base_tables
                    if self.cluster.placement(name) is None]
        if unplaced:
            return FallbackPlan(query, tables=base_tables,
                                reason=f"unpartitioned table {unplaced[0]}")
        by_name = {info.binding_name: info for info in infos}
        if len(by_name) != len(infos):
            return FallbackPlan(query, tables=base_tables,
                                reason="duplicate alias")
        pool = self.mirror._build_predicate_pool(query, infos)
        self.mirror._assign_local_conjuncts(pool, infos)
        if len(infos) == 1:
            return self._plan_single(query, infos[0], infos, pool.remaining)
        if len(infos) == 2:
            plan = self._plan_join(query, infos, by_name, pool.remaining)
            if plan is not None:
                return plan
            return FallbackPlan(query, tables=base_tables,
                                reason="join is not co-partitioned")
        return FallbackPlan(query, tables=base_tables,
                            reason=f"{len(infos)}-way join")

    # -- shared shape extraction ------------------------------------------

    def _shape(self, query: LogicalQuery) -> dict[str, Any]:
        aggregates: list[AggregateCall] = []
        for item in query.select:
            aggregates.extend(collect_aggregates(item.expression))
        if query.having is not None:
            aggregates.extend(collect_aggregates(query.having))
        deduplicated: dict[str, AggregateCall] = {}
        for aggregate in aggregates:
            deduplicated.setdefault(aggregate.result_key(), aggregate)
        order_by = [(self.mirror._rewrite_order_key(order.expression, query),
                     order.descending) for order in query.order_by]
        return {
            "select": list(query.select),
            "aggregates": list(deduplicated.values()),
            "group_by": list(query.group_by),
            "having": query.having,
            "order_by": order_by,
            "top": query.top,
            "distinct": query.distinct,
            "into": query.into,
        }

    # -- the single-table path --------------------------------------------

    def _plan_single(self, query: LogicalQuery, info: _RelationInfo,
                     infos: Sequence[_RelationInfo],
                     leftover: Sequence[Expression]) -> ClusterPlan:
        # Constant (relationless) conjuncts ride along as extra local
        # filters: same rows, same order as the single-node residual.
        conjuncts = list(info.local_conjuncts) + list(leftover)
        shaped = _RelationInfo(ref=info.ref, binding_name=info.binding_name,
                               kind="table", table=info.table,
                               local_conjuncts=conjuncts)
        access = self._choose_access(shaped, query, infos)
        relation = FragmentRelation(info.table.name, info.binding_name,
                                    conjuncts, access)
        return SingleTablePlan(query, relation=relation, **self._shape(query))

    # -- the co-partitioned join path --------------------------------------

    def _plan_join(self, query: LogicalQuery, infos: list[_RelationInfo],
                   by_name: dict[str, _RelationInfo],
                   remaining: Sequence[Expression]
                   ) -> Optional[CoPartitionedJoinPlan]:
        join_conjuncts = [conjunct for conjunct in remaining
                          if self.mirror._conjunct_aliases(conjunct, by_name)]
        constant = [conjunct for conjunct in remaining
                    if not self.mirror._conjunct_aliases(conjunct, by_name)]
        if constant:
            # Rare and order-neutral, but the single-node residual sits
            # above the join; keep the fallback path authoritative.
            return None
        if not join_conjuncts:
            return None

        equalities: list[tuple[Expression, dict[str, Expression]]] = []
        residual_parts: list[Expression] = []
        for conjunct in join_conjuncts:
            sides = self._equality_sides(conjunct, by_name)
            if sides is None:
                residual_parts.append(conjunct)
            else:
                equalities.append((conjunct, sides))
        if not equalities:
            return None
        if not self._is_colocated(equalities, by_name):
            return None

        choice = self._choose_join(query, infos, by_name, equalities,
                                   join_conjuncts)
        if choice is None:
            return None
        drive_info, inner_info, strategy = choice
        drive_access = self._choose_access(drive_info, query, infos)
        inner_access = self._choose_access(inner_info, query, infos)
        drive = FragmentRelation(drive_info.table.name, drive_info.binding_name,
                                 list(drive_info.local_conjuncts), drive_access)
        inner = FragmentRelation(inner_info.table.name, inner_info.binding_name,
                                 list(inner_info.local_conjuncts), inner_access)
        drive_keys = [sides[drive_info.binding_name] for _c, sides in equalities]
        inner_keys = [sides[inner_info.binding_name] for _c, sides in equalities]
        return CoPartitionedJoinPlan(
            query, drive=drive, inner=inner, drive_keys=drive_keys,
            inner_keys=inner_keys, residual=combine_conjuncts(residual_parts),
            strategy=strategy, **self._shape(query))

    def _equality_sides(self, conjunct: Expression,
                        by_name: dict[str, _RelationInfo]
                        ) -> Optional[dict[str, Expression]]:
        """``{binding: expression}`` when the conjunct is a two-sided equality."""
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            return None
        left = self.mirror._conjunct_aliases(conjunct.left, by_name)
        right = self.mirror._conjunct_aliases(conjunct.right, by_name)
        if len(left) != 1 or len(right) != 1 or left == right:
            return None
        return {next(iter(left)): conjunct.left,
                next(iter(right)): conjunct.right}

    def _is_colocated(self, equalities: Sequence[tuple[Expression,
                                                       dict[str, Expression]]],
                      by_name: dict[str, _RelationInfo]) -> bool:
        """True when some equality pair keys both sides' placements."""
        for _conjunct, sides in equalities:
            (binding_a, expr_a), (binding_b, expr_b) = sorted(sides.items())
            if not isinstance(expr_a, ColumnRef) or not isinstance(expr_b, ColumnRef):
                continue
            place_a = self.cluster.placement(by_name[binding_a].table.name)
            place_b = self.cluster.placement(by_name[binding_b].table.name)
            if place_a is None or place_b is None:
                continue
            if colocated(place_a, expr_a.name, place_b, expr_b.name):
                return True
        return False

    # -- mirrored cost decisions -------------------------------------------
    #
    # The formulas below must track Planner._access_path_cbo and the
    # option block of Planner._plan_joins_cbo: the cluster substitutes
    # its own total row counts (the coordinator's tables are detached)
    # but everything else — selectivities, cost constants, tie-breaks —
    # comes from the same code so the cluster picks the access path and
    # join shape the single-node optimizer would, and with it the
    # single-node row order.

    def _estimate_relation(self, info: _RelationInfo, total: int) -> int:
        statistics = self.coordinator.table_statistics(info.table.name)
        selectivities = [self.mirror._conjunct_selectivity(statistics, conjunct)
                         for conjunct in info.local_conjuncts]
        estimate = float(max(1, total)) * self.mirror._combine_selectivities(
            selectivities)
        return max(1, int(estimate))

    def _choose_access(self, info: _RelationInfo, query: LogicalQuery,
                       relations: Sequence[_RelationInfo]) -> AccessChoice:
        mirror = self.mirror
        table = info.table
        key = table.name.lower()
        total = max(1, self.cluster.total_rows(key))
        row_bytes = max(1.0, self.cluster.average_row_bytes(key))
        statistics = self.coordinator.table_statistics(key)
        estimated_out = self._estimate_relation(info, total)
        sargables, non_sargable = mirror._split_sargables(info)
        needed = mirror._needed_columns(query, info, relations)

        candidates: list[tuple[float, int, AccessChoice]] = []
        best_index, best_prefix = mirror._best_seek_index(table, sargables)
        if best_index is not None and best_prefix:
            full_unique = (best_index.unique
                           and len(best_prefix) == len(best_index.columns)
                           and all(s.is_equality for s in best_prefix))
            if full_unique:
                fetched = 1
            else:
                prefix_selectivity = mirror._combine_selectivities(
                    [mirror._sargable_selectivity(statistics, s)
                     for s in best_prefix])
                fetched = max(1, int(total * prefix_selectivity))
            rows = min(estimated_out, fetched)
            used = {sargable.column for sargable in best_prefix}
            residual_parts = list(non_sargable) + [
                sargable.source for column, sargable in sargables.items()
                if column not in used]
            residual = combine_conjuncts(
                [qualify_columns(part, info.binding_name, table)
                 for part in residual_parts])
            low = [s.low for s in best_prefix if s.low is not None]
            high = [s.high for s in best_prefix if s.high is not None]
            covering = needed is not None and best_index.covers(needed)
            per_row = (mirror.INDEX_ENTRY_COST if covering
                       else mirror.RANDOM_LOOKUP_COST)
            cost = math.log2(total + 1) + fetched * per_row
            candidates.append((cost, 0, AccessChoice(
                "seek", residual, index_name=best_index.name,
                index_columns=tuple(best_index.columns),
                low=low or None, high=high or None,
                estimated_rows=rows, cost=cost)))

        predicate = combine_conjuncts(
            [qualify_columns(part, info.binding_name, table)
             for part in info.local_conjuncts])
        if needed is not None and self.cluster.storage_kind(key) != "column":
            covering_indexes = [index for index in table.indexes.values()
                                if index.covers(needed)]
            if covering_indexes:
                narrow = min(covering_indexes,
                             key=lambda index: index.entry_byte_width())
                ratio = min(1.0, max(0.05, narrow.entry_byte_width() / row_bytes))
                cost = total * mirror.SEQ_ROW_COST * ratio
                candidates.append((cost, 1, AccessChoice(
                    "covering", predicate, index_name=narrow.name,
                    index_columns=tuple(narrow.columns),
                    estimated_rows=estimated_out, cost=cost)))
        scan_cost = total * mirror.SEQ_ROW_COST
        candidates.append((scan_cost, 2, AccessChoice(
            "scan", predicate, estimated_rows=estimated_out, cost=scan_cost)))
        _cost, _priority, choice = min(candidates,
                                       key=lambda item: (item[0], item[1]))
        return choice

    def _choose_join(self, query: LogicalQuery, infos: list[_RelationInfo],
                     by_name: dict[str, _RelationInfo],
                     equalities: Sequence[tuple[Expression,
                                                dict[str, Expression]]],
                     join_conjuncts: Sequence[Expression]
                     ) -> Optional[tuple[_RelationInfo, _RelationInfo, str]]:
        """The (drive side, inner side, strategy) the single-node CBO implies."""
        mirror = self.mirror
        paths = {info.binding_name: self._choose_access(info, query, infos)
                 for info in infos}
        start = min(infos, key=lambda info: (paths[info.binding_name].estimated_rows,
                                             paths[info.binding_name].cost,
                                             info.binding_name))
        other = next(info for info in infos
                     if info.binding_name != start.binding_name)
        root_rows = paths[start.binding_name].estimated_rows
        root_cost = paths[start.binding_name].cost
        inner_path = paths[other.binding_name]
        # Equalities in the engine planner's (conjunct, new, old) frame,
        # "new" being the not-yet-planned relation (= `other`).
        framed = []
        for conjunct, sides in equalities:
            if other.binding_name not in sides or start.binding_name not in sides:
                return None
            framed.append((conjunct, sides[other.binding_name],
                           sides[start.binding_name]))
        statistics = self.coordinator.table_statistics(other.table.name)

        options: list[tuple[float, int, tuple[str, Any]]] = []
        if mirror.enable_index_join:
            candidate = mirror._index_join_candidate(other, framed)
            if candidate is not None:
                index, prefix_columns, _by_column = candidate
                matches = self._index_probe_matches(other.table, index,
                                                    prefix_columns)
                cost = root_cost + root_rows * (
                    math.log2(max(2, self.cluster.total_rows(other.table.name)))
                    + matches * mirror.RANDOM_LOOKUP_COST)
                options.append((cost, 0, ("index", None)))
        if mirror.enable_hash_join:
            build_new = inner_path.estimated_rows <= root_rows
            build_rows = inner_path.estimated_rows if build_new else root_rows
            probe_rows = root_rows if build_new else inner_path.estimated_rows
            cost = (root_cost + inner_path.cost
                    + build_rows * mirror.HASH_BUILD_COST
                    + probe_rows * mirror.HASH_PROBE_COST)
            options.append((cost, 1, ("hash", build_new)))
        nested_cost = root_cost + max(1, root_rows) * max(1.0, inner_path.cost)
        options.append((nested_cost, 2, ("nested", None)))

        _cost, _priority, (strategy, extra) = min(
            options, key=lambda item: (item[0], item[1]))
        if strategy == "hash" and extra is False:
            # HashJoin(build=root, probe=new): rows stream in the NEW
            # relation's order, with matches in root order.
            return other, start, "hash"
        return start, other, strategy

    def _index_probe_matches(self, table, index: BTreeIndex,
                             prefix_columns: Sequence[str]) -> float:
        """Planner._index_probe_matches with the cluster-wide row count."""
        if index.unique and len(prefix_columns) == len(index.columns):
            return 1.0
        statistics = self.coordinator.table_statistics(table.name)
        selectivities = []
        for column in prefix_columns:
            distinct = 0
            if statistics is not None:
                column_stats = statistics.column(column)
                if column_stats is not None:
                    distinct = column_stats.distinct_count
            selectivities.append(1.0 / distinct if distinct > 0
                                 else self.mirror.EQUALITY_SELECTIVITY)
        matches = (max(1, self.cluster.total_rows(table.name))
                   * self.mirror._combine_selectivities(selectivities))
        return max(1.0, matches)


# ---------------------------------------------------------------------------
# Partition pruning (evaluated at execution/explain time)
# ---------------------------------------------------------------------------

def constant_bound(expression: Optional[Expression], evaluation) -> Any:
    """Fold a bound to a constant under ``evaluation`` (or ``_UNKNOWN``)."""
    if expression is None:
        return None
    try:
        from ..engine.compile import compile_expression

        value = compile_expression(expression, evaluation)(RowScope())
    except Exception:
        return _UNKNOWN
    from ..engine.types import NULL

    return _UNKNOWN if value is NULL else value


def candidate_shards(cluster: ShardCluster, relation: FragmentRelation,
                     evaluation) -> set[int]:
    """Shards that can contribute rows to ``relation``'s fragment."""
    placement = cluster.placement(relation.table_name)
    candidates = set(range(cluster.shard_count))
    if placement is None:
        return candidates
    for conjunct in relation.local_conjuncts:
        sargable = extract_sargable(conjunct)
        if sargable is None:
            continue
        low = constant_bound(sargable.low, evaluation)
        high = constant_bound(sargable.high, evaluation)
        if sargable.is_equality:
            high = low
        if low is _UNKNOWN and high is _UNKNOWN:
            continue
        folded_low = None if low is _UNKNOWN else low
        folded_high = None if high is _UNKNOWN else high
        if sargable.column == placement.column:
            if sargable.is_equality and folded_low is not None:
                candidates &= placement.prune_equal(folded_low)
            else:
                candidates &= placement.prune_range(folded_low, folded_high)
        candidates &= prune_with_statistics(cluster, relation.table_name,
                                            sargable.column, folded_low,
                                            folded_high)
        if not candidates:
            break
    return candidates
