"""Partitioning schemes: how a table's rows map onto shard nodes.

"When Database Systems Meet the Grid" distributes the SDSS catalogs
across nodes with spatial partitioning so that query shipping touches
only the nodes whose sky region a query selects.  This module provides
the three placement functions the cluster supports:

* **hash** — a stable hash of one key column (``objID``, ``specObjID``)
  modulo the shard count.  Equality predicates on the key prune to a
  single shard; co-partitioned equi-joins (both sides hashed on their
  join column with the same shard count) execute shard-locally.
* **range** — contiguous value ranges of one column, split at explicit
  (or data-quantile) boundaries.  Used for the two spatial schemes:
  *zone* partitioning on ``dec`` (declination bands, the Neighbors
  sweep's geometry) and *HTM* partitioning on ``htmid`` (trixel-id
  ranges, so the existing :mod:`repro.htm` covers prune shards for
  cone/region searches).
* **derived** — rows placed wherever their *parent* row lives, via an
  explicit key→shard map recorded while the parent was partitioned.
  The snowflake arms (Neighbors, Profile, the cross-match tables) ride
  along with their PhotoObj owner under any scheme, which is what makes
  the ``n.objID = p.objID`` joins shard-local even under zone/HTM
  placement.

All placements are *stable*: the same value routes to the same shard in
every process (Python's randomised string hashing is never used).
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Iterable, Sequence

from ..engine.types import NULL


def stable_hash(value: Any) -> int:
    """A process-independent 64-bit hash of one partition-key value."""
    if value is NULL or value is None:
        return 0
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if isinstance(value, int):
        # splitmix64: spreads sequential ids (objID is a packed counter)
        # across shards far better than the identity hash would.
        x = value & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        return x ^ (x >> 31)
    return zlib.crc32(repr(value).encode("utf-8"))


def quantile_boundaries(values: Sequence[Any], shards: int) -> list[Any]:
    """``shards - 1`` split points that balance ``values`` across shards."""
    ordered = sorted(value for value in values if value is not NULL and value is not None)
    if not ordered or shards <= 1:
        return []
    boundaries = []
    for i in range(1, shards):
        boundaries.append(ordered[min(len(ordered) - 1, (i * len(ordered)) // shards)])
    return boundaries


class Placement:
    """Base class: where one table's rows live in an N-shard cluster."""

    scheme = "abstract"

    def __init__(self, table_name: str, column: str, shard_count: int):
        self.table_name = table_name
        self.column = column.lower()
        self.shard_count = shard_count

    def shard_of(self, row: dict[str, Any]) -> int:
        """The shard that owns ``row`` (keys are lower-cased column names)."""
        raise NotImplementedError

    # -- pruning -----------------------------------------------------------

    def all_shards(self) -> set[int]:
        return set(range(self.shard_count))

    def prune_equal(self, value: Any) -> set[int]:
        """Candidate shards for ``column = value``."""
        return self.all_shards()

    def prune_range(self, low: Any, high: Any) -> set[int]:
        """Candidate shards for ``low <= column <= high`` (None = open)."""
        return self.all_shards()

    def prune_ranges(self, ranges: Iterable[tuple[Any, Any]]) -> set[int]:
        """Candidate shards for a union of inclusive ranges (an HTM cover)."""
        candidates: set[int] = set()
        for low, high in ranges:
            candidates |= self.prune_range(low, high)
            if len(candidates) == self.shard_count:
                break
        return candidates

    # -- co-partitioning ---------------------------------------------------

    def route_token(self) -> tuple:
        """Identity of the value→shard mapping (equality ⇒ same routing)."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        return {"table": self.table_name, "scheme": self.scheme,
                "column": self.column, "shards": self.shard_count}


class HashPlacement(Placement):
    """``shard = stable_hash(row[column]) % shards``."""

    scheme = "hash"

    def shard_of(self, row: dict[str, Any]) -> int:
        return stable_hash(row.get(self.column, NULL)) % self.shard_count

    def shard_of_value(self, value: Any) -> int:
        return stable_hash(value) % self.shard_count

    def prune_equal(self, value: Any) -> set[int]:
        return {self.shard_of_value(value)}

    def route_token(self) -> tuple:
        return ("hash", self.shard_count)


class RangePlacement(Placement):
    """Contiguous value ranges split at ``boundaries`` (len = shards - 1).

    Shard ``k`` owns values in ``(boundaries[k-1], boundaries[k]]`` with
    the first shard open below and the last open above; NULLs go to
    shard 0 (they sort first, as in the engine's index ordering).
    """

    scheme = "range"

    def __init__(self, table_name: str, column: str, shard_count: int,
                 boundaries: Sequence[Any]):
        super().__init__(table_name, column, shard_count)
        if len(boundaries) != shard_count - 1:
            raise ValueError(
                f"range placement over {shard_count} shards needs "
                f"{shard_count - 1} boundaries, got {len(boundaries)}")
        self.boundaries = list(boundaries)

    def shard_of(self, row: dict[str, Any]) -> int:
        return self.shard_of_value(row.get(self.column, NULL))

    def shard_of_value(self, value: Any) -> int:
        if value is NULL or value is None:
            return 0
        return bisect.bisect_left(self.boundaries, value)

    def prune_equal(self, value: Any) -> set[int]:
        return {self.shard_of_value(value)}

    def prune_range(self, low: Any, high: Any) -> set[int]:
        first = 0 if low is None else self.shard_of_value(low)
        last = self.shard_count - 1 if high is None else self.shard_of_value(high)
        if last < first:
            return set()
        return set(range(first, last + 1))

    def route_token(self) -> tuple:
        return ("range", self.shard_count, tuple(self.boundaries))

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["boundaries"] = list(self.boundaries)
        return description


class ZonePlacement(RangePlacement):
    """Declination-band range placement (the spatial 'zone' scheme)."""

    scheme = "zone"


class HtmPlacement(RangePlacement):
    """HTM trixel-id range placement; covers prune via :meth:`prune_ranges`."""

    scheme = "htm"


class DerivedPlacement(Placement):
    """Rows co-located with their parent row through a key→shard map.

    ``column`` is the child table's reference to the parent's unique key
    (e.g. Neighbors.objID → PhotoObj.objID).  The map is built while the
    parent is partitioned, so a child row always lands on the shard that
    owns its parent — co-partitioned joins on the key stay shard-local
    under *any* parent scheme.  Keys missing from the map (a dangling or
    late-arriving reference) fall back to the stable hash.
    """

    scheme = "derived"

    def __init__(self, table_name: str, column: str, shard_count: int,
                 parent_table: str, route: dict[Any, int]):
        super().__init__(table_name, column, shard_count)
        self.parent_table = parent_table.lower()
        self.route = route

    def shard_of(self, row: dict[str, Any]) -> int:
        return self.shard_of_value(row.get(self.column, NULL))

    def shard_of_value(self, value: Any) -> int:
        shard = self.route.get(value)
        if shard is None:
            return stable_hash(value) % self.shard_count
        return shard

    def prune_equal(self, value: Any) -> set[int]:
        return {self.shard_of_value(value)}

    def route_token(self) -> tuple:
        return ("derived", self.shard_count, self.parent_table, self.column)

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["parent"] = self.parent_table
        return description


def colocated(left: Placement, left_column: str,
              right: Placement, right_column: str) -> bool:
    """True when ``left.left_column = right.right_column`` is shard-local.

    Holds when both sides route the join key identically: two hash/range
    placements with the same routing token keyed on the join columns, a
    derived child joined to its parent on the derivation key, or two
    children derived from the same parent on the same key.
    """
    left_column = left_column.lower()
    right_column = right_column.lower()
    if left.shard_count != right.shard_count:
        return False
    if left_column != left.column or right_column != right.column:
        # A derived child joined against its parent on the derivation key:
        # the parent's own placement column may differ (zone/htm parents),
        # but the parent's unique key IS the map key, so matching rows
        # share a shard.
        return (_derived_parent_join(left, left_column, right, right_column)
                or _derived_parent_join(right, right_column, left, left_column))
    if isinstance(left, DerivedPlacement) and isinstance(right, DerivedPlacement):
        return (left.parent_table == right.parent_table
                and left.column == right.column)
    if isinstance(left, DerivedPlacement) or isinstance(right, DerivedPlacement):
        return (_derived_parent_join(left, left_column, right, right_column)
                or _derived_parent_join(right, right_column, left, left_column))
    return left.route_token() == right.route_token()


def _derived_parent_join(child: Placement, child_column: str,
                         parent: Placement, parent_column: str) -> bool:
    if not isinstance(child, DerivedPlacement):
        return False
    return (child.column == child_column
            and parent.table_name.lower() == child.parent_table
            and parent_column == child_column)


#: Partition-key affinity of the SkyServer schema: each table's natural
#: placement column, and (parent, key) for the snowflake arms that ride
#: along with their owning row under the spatial schemes.
SKYSERVER_AFFINITY: dict[str, str] = {
    "field": "fieldid",
    "frame": "fieldid",
    "photoobj": "objid",
    "profile": "objid",
    "neighbors": "objid",
    "usno": "objid",
    "rosat": "objid",
    "first": "objid",
    "plate": "plateid",
    "specobj": "specobjid",
    "specline": "specobjid",
    "speclineindex": "specobjid",
    "xcredshift": "specobjid",
    "elredshift": "specobjid",
}

#: Children that derive their placement from PhotoObj's row placement
#: (so zone/HTM partitioning keeps the whole photo snowflake co-local).
PHOTO_CHILDREN = ("profile", "neighbors", "usno", "rosat", "first")
