"""Disk/controller configurations swept by Figure 15.

Figure 15's x-axis runs from one disk to twelve disks ("one controller
added for each 3 disks") and ends with a "12disk 2vol" point where the
twelve disks are split across two volumes; its annotations mark where
each resource saturates.  :func:`figure15_configurations` reproduces
that sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .components import ServerHardware


@dataclass(frozen=True)
class DiskConfiguration:
    """One point of the Figure 15 sweep."""

    label: str
    disks: int
    controllers: int
    volumes: int = 1

    def disks_per_controller(self) -> list[int]:
        """How the disks spread across the controllers (round-robin)."""
        base = self.disks // self.controllers
        remainder = self.disks % self.controllers
        return [base + (1 if index < remainder else 0) for index in range(self.controllers)]


def controllers_for(disks: int) -> int:
    """One controller per three disks, as in the paper's measurement setup."""
    return max(1, (disks + 2) // 3)


def figure15_configurations() -> list[DiskConfiguration]:
    """The thirteen x-axis points of Figure 15 (1..12 disks, plus 12-disk/2-volume)."""
    configurations = [DiskConfiguration(f"{disks}disk", disks, controllers_for(disks))
                      for disks in range(1, 13)]
    configurations.append(DiskConfiguration("12disk 2vol", 12, 4, volumes=2))
    return configurations


@dataclass(frozen=True)
class SaturationAnnotations:
    """The bottleneck annotations printed next to Figure 15's curve."""

    one_controller_saturates_at_disks: int
    one_pci_bus_saturates_at_disks: int
    sql_cpu_saturates_at_disks: int


def saturation_points(hardware: ServerHardware,
                      configurations: Sequence[DiskConfiguration]) -> SaturationAnnotations:
    """Find the first configuration at which each resource becomes the bottleneck."""
    from .scan import predict_bandwidth

    controller_point = 0
    bus_point = 0
    cpu_point = 0
    for configuration in configurations:
        prediction = predict_bandwidth(hardware, configuration)
        if not controller_point and prediction.bottleneck == "controller":
            controller_point = configuration.disks
        if not bus_point and prediction.bottleneck == "pci bus":
            bus_point = configuration.disks
        if not cpu_point and prediction.bottleneck == "cpu":
            cpu_point = configuration.disks
    return SaturationAnnotations(controller_point, bus_point, cpu_point)
