"""Hardware component models for the sequential-scan throughput analysis.

Section 12 and Figure 15 of the paper measure where sequential-scan
bandwidth saturates as disks and controllers are added to the database
server:

* a single disk delivers about 40 MB/s (37–51 MB/s measured);
* three disks saturate one Ultra3 SCSI controller at about 119 MB/s;
* a 64-bit/33 MHz PCI bus saturates at about 220 MB/s;
* the raw NTFS file system reaches 430 MB/s on 12 disks / 4 controllers;
* SQL Server's record processing becomes CPU-bound near 320 MB/s
  (≈2.6 million 128-byte records per second, ~10 clocks per byte on two
  1 GHz processors for ``select count(*)``, ~19 clocks per byte for the
  ``count(*) where (r-g) > 1`` predicate);
* memory copy bandwidth is about 600 MB/s single-threaded.

The component classes below encode exactly those published figures so
the Figure 15 benchmark can sweep configurations analytically; the
measured scan rate of the reproduction's Python engine is converted to
the same units in :mod:`repro.iosim.scan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Published component figures (all bandwidths in MB/s).
DISK_MBPS = 40.0
DISK_MBPS_MIN = 37.0
DISK_MBPS_MAX = 51.0
CONTROLLER_MBPS = 119.0
DISKS_PER_CONTROLLER = 3
PCI_64_33_MBPS = 220.0
PCI_64_66_MBPS = 420.0
NTFS_MAX_MBPS = 430.0
MEMORY_SINGLE_THREAD_MBPS = 600.0
MEMORY_MULTI_THREAD_READ_MBPS = 849.0

#: CPU cost of the SQL record pipeline (section 12's micro-measurements).
#: The paper quotes 10 clocks/byte (1300 clocks/record) for ``count(*)`` at
#: 75% CPU and 19 clocks/byte for the predicate scan; the ceilings below are
#: the throughputs those scans were measured to saturate at (331 MB/s and
#: ~140 MB/s), which is what the Figure 15 model needs.
CPU_CLOCKS_PER_BYTE_COUNT = 10.0         # select count(*) (as quoted)
CPU_CLOCKS_PER_BYTE_PREDICATE = 19.0     # count(*) where (r-g) > 1 (as quoted)
CPU_CLOCKS_PER_RECORD = 1300.0
SQL_COUNT_MAX_MBPS = 331.0               # measured ceiling of the count(*) scan
SQL_PREDICATE_MAX_MBPS = 140.0           # measured ceiling of the predicate scan
SQL_CPU_UTILISATION_AT_CEILING = 0.75
TAG_RECORD_BYTES = 128
CPU_GHZ = 1.0
CPU_COUNT = 2
IN_MEMORY_RECORDS_PER_SECOND = 5.0e6     # "SQL scans at 5 mrps when data is in memory"


@dataclass(frozen=True)
class Disk:
    """One 10k-rpm Ultra160 SCSI data disk."""

    sequential_mbps: float = DISK_MBPS

    def bandwidth(self) -> float:
        return self.sequential_mbps


@dataclass(frozen=True)
class ScsiController:
    """One Ultra3 SCSI channel; saturates at about three disks."""

    max_mbps: float = CONTROLLER_MBPS
    max_disks: int = DISKS_PER_CONTROLLER * 2   # channels hold 5-6 disks physically

    def bandwidth(self, attached_disks: int, disk: Disk = Disk()) -> float:
        return min(self.max_mbps, attached_disks * disk.bandwidth())


@dataclass(frozen=True)
class PciBus:
    """A PCI bus shared by one or more SCSI controllers."""

    max_mbps: float = PCI_64_33_MBPS

    def bandwidth(self, offered_mbps: float) -> float:
        return min(self.max_mbps, offered_mbps)


@dataclass(frozen=True)
class CpuModel:
    """The SQL record-processing cost model.

    ``count_max_mbps`` / ``predicate_max_mbps`` are the measured ceilings at
    which SQL Server's record pipeline saturated the two 1 GHz processors for
    the trivial ``count(*)`` and the ``(r-g) > 1`` predicate scan.
    """

    count_max_mbps: float = SQL_COUNT_MAX_MBPS
    predicate_max_mbps: float = SQL_PREDICATE_MAX_MBPS
    ghz: float = CPU_GHZ
    processors: int = CPU_COUNT
    utilisation_at_ceiling: float = SQL_CPU_UTILISATION_AT_CEILING

    def max_mbps(self, *, predicate: bool = False) -> float:
        """Bandwidth at which record processing saturates the processors."""
        return self.predicate_max_mbps if predicate else self.count_max_mbps

    def records_per_second(self, record_bytes: float = TAG_RECORD_BYTES, *,
                           predicate: bool = False) -> float:
        return self.max_mbps(predicate=predicate) * 1.0e6 / record_bytes

    def clocks_per_byte(self, *, predicate: bool = False) -> float:
        """Effective clocks per byte implied by the measured ceilings."""
        clocks_per_second = self.ghz * 1.0e9 * self.processors * self.utilisation_at_ceiling
        return clocks_per_second / (self.max_mbps(predicate=predicate) * 1.0e6)

    def utilisation(self, achieved_mbps: float, *, predicate: bool = False) -> float:
        """CPU fraction consumed while scanning at ``achieved_mbps``."""
        ceiling = self.max_mbps(predicate=predicate)
        return min(1.0, achieved_mbps / ceiling * self.utilisation_at_ceiling)


@dataclass(frozen=True)
class Memory:
    """Main-memory bandwidth ceiling."""

    single_thread_mbps: float = MEMORY_SINGLE_THREAD_MBPS
    multi_thread_read_mbps: float = MEMORY_MULTI_THREAD_READ_MBPS

    def bandwidth(self) -> float:
        return self.single_thread_mbps


@dataclass(frozen=True)
class ServerHardware:
    """The Figure 14 database server: the component set Figure 15 sweeps."""

    disk: Disk = field(default_factory=Disk)
    controller: ScsiController = field(default_factory=ScsiController)
    bus: PciBus = field(default_factory=PciBus)
    cpu: CpuModel = field(default_factory=CpuModel)
    memory: Memory = field(default_factory=Memory)

    @classmethod
    def paper_database_server(cls) -> "ServerHardware":
        """The Compaq ML530 configuration of Figure 14."""
        return cls()
