"""Sequential-scan bandwidth prediction and engine measurement (Figure 15).

``predict_bandwidth`` runs the analytic component model for one disk
configuration: the offered bandwidth is disks × per-disk rate, clipped
by each controller, by the PCI buses the controllers sit on, by the
file system, and finally by SQL's record-processing CPU ceiling; the
first clip encountered is reported as the bottleneck — the annotations
of Figure 15.

``measure_engine_scan`` times a real sequential scan of a table in the
reproduction's engine and converts it into the same units (MB/s and
records/s) so paper-vs-measured tables can show both the model at
paper-hardware scale and the Python engine's own throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..engine import Database
from .components import (NTFS_MAX_MBPS, PCI_64_33_MBPS, PCI_64_66_MBPS,
                         ServerHardware, TAG_RECORD_BYTES)
from .config import DiskConfiguration, figure15_configurations


@dataclass
class BandwidthPrediction:
    """Predicted throughput of one configuration, with the limiting resource."""

    configuration: DiskConfiguration
    disk_mbps: float
    controller_mbps: float
    bus_mbps: float
    filesystem_mbps: float
    sql_mbps: float
    bottleneck: str
    cpu_utilisation: float

    @property
    def achieved_mbps(self) -> float:
        return self.sql_mbps

    def records_per_second(self, record_bytes: float = TAG_RECORD_BYTES) -> float:
        return self.achieved_mbps * 1.0e6 / record_bytes


def predict_bandwidth(hardware: ServerHardware, configuration: DiskConfiguration, *,
                      predicate_scan: bool = False) -> BandwidthPrediction:
    """Predict the sequential-scan bandwidth of one disk configuration."""
    disk_mbps = configuration.disks * hardware.disk.bandwidth()

    controller_mbps = 0.0
    per_controller_offered: list[float] = []
    for attached in configuration.disks_per_controller():
        offered = attached * hardware.disk.bandwidth()
        limited = min(offered, hardware.controller.max_mbps)
        per_controller_offered.append(limited)
        controller_mbps += limited

    # The ML530 has a 2-slot 64-bit/66MHz bus and a 5-slot 64-bit/33MHz bus;
    # the first two controllers sit on the fast bus, later ones on the slow one.
    fast_bus_offered = sum(per_controller_offered[:2])
    slow_bus_offered = sum(per_controller_offered[2:])
    bus_mbps = min(fast_bus_offered, PCI_64_66_MBPS) + min(slow_bus_offered, PCI_64_33_MBPS)

    filesystem_mbps = min(bus_mbps, NTFS_MAX_MBPS)
    sql_ceiling = hardware.cpu.max_mbps(predicate=predicate_scan)
    sql_mbps = min(filesystem_mbps, sql_ceiling)

    if sql_mbps < filesystem_mbps - 1e-9:
        bottleneck = "cpu"
    elif filesystem_mbps < bus_mbps - 1e-9:
        bottleneck = "filesystem"
    elif bus_mbps < controller_mbps - 1e-9:
        bottleneck = "pci bus"
    elif controller_mbps < disk_mbps - 1e-9:
        bottleneck = "controller"
    else:
        bottleneck = "disks"

    return BandwidthPrediction(
        configuration=configuration,
        disk_mbps=disk_mbps,
        controller_mbps=controller_mbps,
        bus_mbps=bus_mbps,
        filesystem_mbps=filesystem_mbps,
        sql_mbps=sql_mbps,
        bottleneck=bottleneck,
        cpu_utilisation=hardware.cpu.utilisation(sql_mbps, predicate=predicate_scan),
    )


def sweep_figure15(hardware: Optional[ServerHardware] = None, *,
                   predicate_scan: bool = False) -> list[BandwidthPrediction]:
    """The full Figure 15 sweep (1..12 disks plus the two-volume point)."""
    hardware = hardware or ServerHardware.paper_database_server()
    return [predict_bandwidth(hardware, configuration, predicate_scan=predicate_scan)
            for configuration in figure15_configurations()]


@dataclass
class EngineScanMeasurement:
    """Measured sequential-scan throughput of the reproduction's engine."""

    table: str
    rows: int
    bytes_scanned: int
    elapsed_seconds: float
    rows_per_second: float
    mbps: float
    warm: bool


def measure_engine_scan(database: Database, table_name: str = "PhotoObj", *,
                        predicate_sql: str = "modelMag_r > 0",
                        warm: bool = True) -> EngineScanMeasurement:
    """Time a full sequential scan of a table through the SQL layer.

    ``warm`` is bookkeeping only (all engine data is memory-resident, the
    paper's "warm" case); the cold case is modelled, not measured, since
    the reproduction has no real disks to read from.
    """
    from ..engine import SqlSession

    session = SqlSession(database)
    started = time.perf_counter()
    result = session.query(f"select count(*) as n from {table_name} where {predicate_sql}")
    elapsed = max(1.0e-9, time.perf_counter() - started)
    statistics = result.statistics
    rows = statistics.rows_scanned
    return EngineScanMeasurement(
        table=table_name,
        rows=rows,
        bytes_scanned=statistics.bytes_scanned,
        elapsed_seconds=elapsed,
        rows_per_second=rows / elapsed,
        mbps=statistics.bytes_scanned / 1.0e6 / elapsed,
        warm=warm,
    )


def figure15_table(predictions: Sequence[BandwidthPrediction]) -> str:
    """Render the sweep as the text table the benchmark prints."""
    lines = [f"{'config':>12s} {'disks':>5s} {'ctlrs':>5s} {'MB/s':>7s} {'bottleneck':>12s} {'cpu':>5s}"]
    for prediction in predictions:
        configuration = prediction.configuration
        lines.append(
            f"{configuration.label:>12s} {configuration.disks:5d} {configuration.controllers:5d} "
            f"{prediction.achieved_mbps:7.0f} {prediction.bottleneck:>12s} "
            f"{prediction.cpu_utilisation:5.0%}")
    return "\n".join(lines)
