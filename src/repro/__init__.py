"""repro: a reproduction of the SDSS SkyServer (SIGMOD 2002).

The package is organised bottom-up:

* :mod:`repro.engine` — an in-memory relational engine (the SQL Server
  stand-in): tables, constraints, B-tree indices, views, functions,
  a cost-based planner and a SQL subset front-end.
* :mod:`repro.htm` — the Hierarchical Triangular Mesh spatial index.
* :mod:`repro.schema` — the SkyServer photographic and spectroscopic
  snowflake schemas, views, flags and index set.
* :mod:`repro.pipeline` — a synthetic SDSS survey and processing
  pipeline standing in for the real Early Data Release.
* :mod:`repro.loader` — the DTS-style load/validate/undo pipeline.
* :mod:`repro.skyserver` — the public query service: spatial functions,
  result formats, query limits, the 20 data-mining queries, the Personal
  SkyServer subset and the education projects.
* :mod:`repro.traffic` — web-log synthesis and analysis (Figure 5).
* :mod:`repro.iosim` — the disk/controller/bus/CPU throughput model
  (Figure 15).
"""

from .version import __version__

__all__ = ["__version__"]
