"""The spectroscopic snowflake schema (paper Figure 7, right).

About 600 spectra are observed at once through a drilled plate; the
1D pipeline extracts roughly 30 spectral lines per spectrum, analyses
line groups (SpecLineIndex), and derives a cross-correlation redshift
(xcRedShift) plus an emission-line-only redshift (elRedShift).
Foreign keys tie every derived row back to its SpecObj, and SpecObj
links back to PhotoObj when the photometric counterpart is known.
"""

from __future__ import annotations

from typing import List

from ..engine import (CURRENT_TIMESTAMP, Column, ForeignKey, PrimaryKey, bigint,
                      blob, floating, integer, text, timestamp)


def _timestamped(columns: List[Column]) -> List[Column]:
    columns.append(timestamp("insertTime", default=CURRENT_TIMESTAMP,
                             description="Load timestamp used by the loader's UNDO"))
    return columns


def plate_columns() -> List[Column]:
    """The Plate table: one row per drilled spectroscopic plate."""
    return _timestamped([
        bigint("plateID", description="Unique plate identifier"),
        integer("plateNumber", description="Physical plate number"),
        floating("mjd", unit="days", description="Modified Julian Date of the observation"),
        floating("ra", unit="deg", description="Right ascension of the plate centre"),
        floating("dec", unit="deg", description="Declination of the plate centre"),
        integer("nFibers", description="Number of fibers on the plate (about 600)"),
        floating("exposureTime", unit="s", description="Total exposure time"),
        text("program", description="Survey program the plate belongs to"),
        integer("quality", description="Plate quality code"),
    ])


def specobj_columns() -> List[Column]:
    """The SpecObj table: one row per observed spectrum."""
    return _timestamped([
        bigint("specObjID", description="Unique spectroscopic object identifier"),
        bigint("plateID", description="Plate the spectrum was taken on"),
        integer("fiberID", description="Fiber number on the plate (1..640)"),
        bigint("objID", description="Matching photometric object (0 if unmatched)"),
        floating("ra", unit="deg", description="J2000 right ascension of the fiber"),
        floating("dec", unit="deg", description="J2000 declination of the fiber"),
        floating("z", description="Final redshift"),
        floating("zErr", description="Redshift error"),
        floating("zConf", description="Redshift confidence (0..1)"),
        integer("zStatus", description="Redshift measurement status code"),
        integer("specClass", description="Spectral classification (fSpecClass)"),
        floating("velDisp", unit="km/s", description="Velocity dispersion"),
        floating("velDispErr", unit="km/s", description="Velocity dispersion error"),
        floating("sn_0", description="Median signal-to-noise in the blue camera"),
        floating("sn_1", description="Median signal-to-noise in the red camera"),
        floating("mag_0", unit="mag", description="Fiber magnitude in g at targeting"),
        floating("mag_1", unit="mag", description="Fiber magnitude in r at targeting"),
        floating("mag_2", unit="mag", description="Fiber magnitude in i at targeting"),
        blob("img", description="GIF rendering of the calibrated spectrum"),
    ])


def specline_columns() -> List[Column]:
    """The SpecLine table: one row per measured spectral line."""
    return _timestamped([
        bigint("specLineID", description="Unique spectral-line identifier"),
        bigint("specObjID", description="Spectrum the line was measured in"),
        integer("lineID", description="Rest wavelength code naming the line (SpecLineNames)"),
        floating("wave", unit="Angstrom", description="Observed central wavelength"),
        floating("waveErr", unit="Angstrom", description="Wavelength error"),
        floating("ew", unit="Angstrom", description="Equivalent width"),
        floating("ewErr", unit="Angstrom", description="Equivalent width error"),
        floating("height", description="Line height above the continuum"),
        floating("sigma", unit="Angstrom", description="Gaussian width of the line"),
        floating("continuum", description="Continuum level at the line"),
        integer("category", description="1=emission, 2=absorption"),
    ])


def speclineindex_columns() -> List[Column]:
    """The SpecLineIndex table: quantities derived from analysing line groups."""
    return _timestamped([
        bigint("specLineIndexID", description="Unique line-index identifier"),
        bigint("specObjID", description="Spectrum the index was computed for"),
        text("name", description="Index name (e.g. D4000, HdeltaA, Mg_b)"),
        floating("value", description="Index value"),
        floating("error", description="Index error"),
        floating("continuum", description="Continuum level used"),
    ])


def xcredshift_columns() -> List[Column]:
    """The xcRedShift table: cross-correlation redshifts against template spectra."""
    return _timestamped([
        bigint("xcRedShiftID", description="Unique cross-correlation redshift identifier"),
        bigint("specObjID", description="Spectrum the redshift was measured for"),
        floating("z", description="Cross-correlation redshift"),
        floating("zErr", description="Redshift error"),
        floating("r", description="Tonry-Davis correlation coefficient"),
        integer("tempNo", description="Template spectrum number"),
        floating("peakHeight", description="Correlation peak height"),
        floating("width", description="Correlation peak width"),
    ])


def elredshift_columns() -> List[Column]:
    """The elRedShift table: redshifts derived from emission lines only."""
    return _timestamped([
        bigint("elRedShiftID", description="Unique emission-line redshift identifier"),
        bigint("specObjID", description="Spectrum the redshift was measured for"),
        floating("z", description="Emission-line redshift"),
        floating("zErr", description="Redshift error"),
        integer("nLines", description="Number of emission lines used"),
        floating("quality", description="Fit quality measure"),
    ])


def spectro_tables() -> dict[str, dict]:
    """Definitions of every spectroscopic-side table, keyed by table name."""
    return {
        "Plate": {
            "columns": plate_columns(),
            "primary_key": PrimaryKey(["plateID"]),
            "foreign_keys": [],
            "description": "Drilled spectroscopic plates (about 600 fibers each)",
        },
        "SpecObj": {
            "columns": specobj_columns(),
            "primary_key": PrimaryKey(["specObjID"]),
            "foreign_keys": [
                ForeignKey(["plateID"], "Plate", ["plateID"],
                           name="fk_specobj_plate", allow_null=False),
                ForeignKey(["objID"], "PhotoObj", ["objID"],
                           name="fk_specobj_photoobj", treat_zero_as_null=True),
            ],
            "description": "One row per observed spectrum, with the final redshift",
        },
        "SpecLine": {
            "columns": specline_columns(),
            "primary_key": PrimaryKey(["specLineID"]),
            "foreign_keys": [ForeignKey(["specObjID"], "SpecObj", ["specObjID"],
                                        name="fk_specline_specobj", allow_null=False)],
            "description": "Measured emission and absorption lines (about 30 per spectrum)",
        },
        "SpecLineIndex": {
            "columns": speclineindex_columns(),
            "primary_key": PrimaryKey(["specLineIndexID"]),
            "foreign_keys": [ForeignKey(["specObjID"], "SpecObj", ["specObjID"],
                                        name="fk_speclineindex_specobj", allow_null=False)],
            "description": "Quantities derived from analysing spectral line groups",
        },
        "xcRedShift": {
            "columns": xcredshift_columns(),
            "primary_key": PrimaryKey(["xcRedShiftID"]),
            "foreign_keys": [ForeignKey(["specObjID"], "SpecObj", ["specObjID"],
                                        name="fk_xcredshift_specobj", allow_null=False)],
            "description": "Cross-correlation redshifts against template spectra",
        },
        "elRedShift": {
            "columns": elredshift_columns(),
            "primary_key": PrimaryKey(["elRedShiftID"]),
            "foreign_keys": [ForeignKey(["specObjID"], "SpecObj", ["specObjID"],
                                        name="fk_elredshift_specobj", allow_null=False)],
            "description": "Redshifts derived from emission lines only",
        },
    }
