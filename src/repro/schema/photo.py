"""The photographic snowflake schema (paper Figure 7, left).

The PhotoObj table sits at the centre with the Field / Frame tables
describing the processing context, the Profile table holding the radial
profile arrays, the Neighbors materialised view speeding proximity
searches, and one relationship table per external survey (USNO, ROSAT,
FIRST) recording successful cross-correlations.
"""

from __future__ import annotations

from typing import List

from ..engine import (CURRENT_TIMESTAMP, Column, ForeignKey, PrimaryKey, bigint,
                      blob, floating, integer, text, timestamp)
from .flags import BANDS, MAGNITUDE_KINDS


def _timestamped(columns: List[Column]) -> List[Column]:
    """Append the insert-timestamp column every SkyServer table carries.

    "Each table in the database has a timestamp field that tells when the
    record was inserted" — the loader's UNDO depends on it (paper §9.4).
    """
    columns.append(timestamp("insertTime", default=CURRENT_TIMESTAMP,
                             description="Load timestamp used by the loader's UNDO"))
    return columns


def field_columns() -> List[Column]:
    """The Field table: "describes the processing that was used for all objects
    in that field, in all frames"."""
    return _timestamped([
        bigint("fieldID", description="Unique field identifier"),
        integer("run", description="Imaging run number"),
        integer("rerun", description="Processing rerun number"),
        integer("camcol", description="Camera column (1..6)"),
        integer("field", description="Field sequence number within the run"),
        integer("stripe", description="Survey stripe number"),
        text("strip", description="Strip within the stripe (N or S)"),
        floating("mjd", unit="days", description="Modified Julian Date of the observation"),
        floating("ra", unit="deg", description="Right ascension of the field centre"),
        floating("dec", unit="deg", description="Declination of the field centre"),
        floating("raMin", unit="deg", description="Minimum RA covered by the field"),
        floating("raMax", unit="deg", description="Maximum RA covered by the field"),
        floating("decMin", unit="deg", description="Minimum Dec covered by the field"),
        floating("decMax", unit="deg", description="Maximum Dec covered by the field"),
        integer("nObjects", description="Number of photo objects detected in the field"),
        integer("nStars", description="Number of objects classified as stars"),
        integer("nGalaxy", description="Number of objects classified as galaxies"),
        integer("quality", description="Field quality code (1=bad .. 3=excellent)"),
        floating("seeing", unit="arcsec", description="Median PSF width in the field"),
        floating("skyBrightness", unit="mag/arcsec^2", description="Sky background level"),
    ])


def frame_columns() -> List[Column]:
    """The Frame table: the image pyramid tiles at the four zoom levels."""
    return _timestamped([
        bigint("frameID", description="Unique frame identifier"),
        bigint("fieldID", description="Field this frame belongs to"),
        integer("zoom", description="Image-pyramid zoom level (0=full resolution .. 3)"),
        integer("run", description="Imaging run number"),
        integer("camcol", description="Camera column (1..6)"),
        integer("field", description="Field sequence number"),
        integer("stripe", description="Survey stripe number"),
        floating("ra", unit="deg", description="Right ascension of the frame centre"),
        floating("dec", unit="deg", description="Declination of the frame centre"),
        floating("a", description="Astrometric transformation coefficient a"),
        floating("b", description="Astrometric transformation coefficient b"),
        floating("c", description="Astrometric transformation coefficient c"),
        floating("d", description="Astrometric transformation coefficient d"),
        floating("e", description="Astrometric transformation coefficient e"),
        floating("f", description="Astrometric transformation coefficient f"),
        blob("img", description="JPEG tile of the frame at this zoom level"),
    ])


def photoobj_columns() -> List[Column]:
    """The PhotoObj table: ~400 attributes in the real survey, the queried core here."""
    columns: List[Column] = [
        bigint("objID", description="Unique object identifier (bit-encoded run/camcol/field/id)"),
        bigint("fieldID", description="Field the object was detected in"),
        integer("run", description="Imaging run number"),
        integer("rerun", description="Processing rerun number"),
        integer("camcol", description="Camera column (1..6)"),
        integer("field", description="Field sequence number"),
        integer("obj", description="Object number within the field"),
        integer("mode", description="1=primary, 2=secondary, 3=family (outside chunk)"),
        integer("nChild", description="Number of deblended children"),
        bigint("parentID", description="objID of the deblend parent (0 if none)"),
        integer("type", description="Object classification code (fPhotoType)"),
        floating("probPSF", description="Probability the object is a point source"),
        bigint("flags", description="Photo flag bits (fPhotoFlags)"),
        bigint("status", description="Status bits (fPhotoStatus)"),
        floating("ra", unit="deg", description="J2000 right ascension"),
        floating("dec", unit="deg", description="J2000 declination"),
        floating("cx", description="Unit vector x component"),
        floating("cy", description="Unit vector y component"),
        floating("cz", description="Unit vector z component"),
        bigint("htmID", description="20-deep Hierarchical Triangular Mesh id"),
        floating("raErr", unit="arcsec", description="Error in right ascension"),
        floating("decErr", unit="arcsec", description="Error in declination"),
        floating("rowv", unit="deg/day", description="Row-direction velocity (Query 15)"),
        floating("colv", unit="deg/day", description="Column-direction velocity (Query 15)"),
        floating("rowvErr", unit="deg/day", description="Error in row velocity"),
        floating("colvErr", unit="deg/day", description="Error in column velocity"),
        floating("extinction_u", unit="mag", description="Galactic extinction in u"),
        floating("extinction_g", unit="mag", description="Galactic extinction in g"),
        floating("extinction_r", unit="mag", description="Galactic extinction in r"),
        floating("extinction_i", unit="mag", description="Galactic extinction in i"),
        floating("extinction_z", unit="mag", description="Galactic extinction in z"),
        bigint("specObjID", description="Matching spectroscopic object (0 if none)"),
    ]
    for kind in MAGNITUDE_KINDS:
        for band in BANDS:
            columns.append(floating(f"{kind}_{band}", unit="mag",
                                    description=f"{kind} magnitude in the {band} band"))
            columns.append(floating(f"{kind}Err_{band}", unit="mag",
                                    description=f"Error of the {kind} magnitude in {band}"))
    for band in BANDS:
        columns.extend([
            floating(f"petroRad_{band}", unit="arcsec",
                     description=f"Petrosian radius in {band}"),
            floating(f"petroR50_{band}", unit="arcsec",
                     description=f"Radius containing 50% of the Petrosian flux in {band}"),
            floating(f"petroR90_{band}", unit="arcsec",
                     description=f"Radius containing 90% of the Petrosian flux in {band}"),
            floating(f"isoA_{band}", unit="arcsec",
                     description=f"Isophotal major axis in {band} (NEO query)"),
            floating(f"isoB_{band}", unit="arcsec",
                     description=f"Isophotal minor axis in {band} (NEO query)"),
            floating(f"isoPhi_{band}", unit="deg",
                     description=f"Isophotal position angle in {band}"),
            floating(f"q_{band}",
                     description=f"Stokes Q ellipticity parameter in {band}"),
            floating(f"u_{band}",
                     description=f"Stokes U ellipticity parameter in {band}"),
            floating(f"lnLDeV_{band}",
                     description=f"de Vaucouleurs profile fit log-likelihood in {band}"),
            floating(f"lnLExp_{band}",
                     description=f"Exponential profile fit log-likelihood in {band}"),
            floating(f"lnLStar_{band}",
                     description=f"PSF (stellar) fit log-likelihood in {band}"),
        ])
    return _timestamped(columns)


def profile_columns() -> List[Column]:
    """The Profile table: "the brightness in concentric rings around the object".

    As in the original design the radial profile is stored as a packed
    array blob ("the data is encapsulated by access functions that
    extract the array elements from a blob", §9.1.1); one row per object
    holds all five bands, which is why Table 1 shows the same record
    count for Profile as for PhotoObj.
    """
    return _timestamped([
        bigint("objID", description="Object the profile belongs to"),
        integer("nBins", description="Number of radial bins per band"),
        blob("profMean", nullable=False,
             description="Packed little-endian float32 array: nBins bins x 5 bands "
                         "of mean surface brightness"),
        blob("profErr", nullable=False,
             description="Packed little-endian float32 array of the bin errors"),
    ])


#: Number of radial profile bins stored per band.
PROFILE_BINS = 8


def pack_profile(values: List[float]) -> bytes:
    """Pack a radial profile (floats) into the blob layout used by Profile."""
    import struct

    return struct.pack(f"<{len(values)}f", *values)


def unpack_profile(blob: bytes) -> List[float]:
    """Unpack a Profile blob back into its float values."""
    import struct

    count = len(blob) // 4
    return list(struct.unpack(f"<{count}f", blob))


def profile_value(blob: bytes, band_index: int, bin_index: int,
                  n_bins: int = PROFILE_BINS) -> float:
    """``fProfileValue(profMean, band, bin)`` — extract one element from the blob."""
    values = unpack_profile(blob)
    position = int(band_index) * int(n_bins) + int(bin_index)
    if position < 0 or position >= len(values):
        raise IndexError(f"profile element ({band_index}, {bin_index}) out of range")
    return values[position]


def neighbors_columns() -> List[Column]:
    """The Neighbors table: "for every object ... all other objects within ½ arcminute"."""
    return _timestamped([
        bigint("objID", description="Object whose neighbourhood this row describes"),
        bigint("neighborObjID", description="A nearby object"),
        floating("distance", unit="arcmin", description="Arc distance between the pair"),
        integer("neighborType", description="Photo type of the neighbour"),
        integer("neighborMode", description="Mode (primary/secondary) of the neighbour"),
    ])


def usno_columns() -> List[Column]:
    """Cross-match against the US Naval Observatory astrometric catalog."""
    return _timestamped([
        bigint("objID", description="Matched SDSS object"),
        bigint("usnoID", description="USNO catalog identifier"),
        floating("distance", unit="arcsec", description="Match distance"),
        floating("bMag", unit="mag", description="USNO photographic blue magnitude"),
        floating("rMag", unit="mag", description="USNO photographic red magnitude"),
        floating("properMotion", unit="mas/yr", description="Total proper motion"),
        floating("properMotionAngle", unit="deg", description="Proper-motion position angle"),
    ])


def rosat_columns() -> List[Column]:
    """Cross-match against the ROSAT All Sky Survey X-ray catalog."""
    return _timestamped([
        bigint("objID", description="Matched SDSS object"),
        bigint("rosatID", description="ROSAT source identifier"),
        floating("distance", unit="arcsec", description="Match distance"),
        floating("countRate", unit="counts/s", description="X-ray count rate"),
        floating("countRateErr", unit="counts/s", description="Count rate error"),
        floating("hardnessRatio1", description="Hardness ratio HR1"),
        floating("hardnessRatio2", description="Hardness ratio HR2"),
        floating("exposure", unit="s", description="Exposure time"),
    ])


def first_columns() -> List[Column]:
    """Cross-match against the FIRST 20-cm radio survey."""
    return _timestamped([
        bigint("objID", description="Matched SDSS object"),
        bigint("firstID", description="FIRST source identifier"),
        floating("distance", unit="arcsec", description="Match distance"),
        floating("peakFlux", unit="mJy", description="Peak radio flux density"),
        floating("integratedFlux", unit="mJy", description="Integrated radio flux density"),
        floating("rms", unit="mJy", description="Local noise estimate"),
        floating("majorAxis", unit="arcsec", description="Fitted major axis"),
        floating("minorAxis", unit="arcsec", description="Fitted minor axis"),
    ])


def photo_tables() -> dict[str, dict]:
    """Definitions of every photographic-side table, keyed by table name."""
    return {
        "Field": {
            "columns": field_columns(),
            "primary_key": PrimaryKey(["fieldID"]),
            "foreign_keys": [],
            "description": "Processing metadata for one 10x13 arcminute field",
        },
        "Frame": {
            "columns": frame_columns(),
            "primary_key": PrimaryKey(["frameID"]),
            "foreign_keys": [ForeignKey(["fieldID"], "Field", ["fieldID"],
                                        name="fk_frame_field", allow_null=False)],
            "description": "Image-pyramid tiles of a field at the four zoom levels",
        },
        "PhotoObj": {
            "columns": photoobj_columns(),
            "primary_key": PrimaryKey(["objID"]),
            "foreign_keys": [ForeignKey(["fieldID"], "Field", ["fieldID"],
                                        name="fk_photoobj_field", allow_null=False)],
            "description": "All attributes of every photometric detection (the snowflake centre)",
        },
        "Profile": {
            "columns": profile_columns(),
            "primary_key": PrimaryKey(["objID"]),
            "foreign_keys": [ForeignKey(["objID"], "PhotoObj", ["objID"],
                                        name="fk_profile_photoobj", allow_null=False)],
            "description": "Radial surface-brightness profile of each object",
        },
        "Neighbors": {
            "columns": neighbors_columns(),
            "primary_key": PrimaryKey(["objID", "neighborObjID"]),
            "foreign_keys": [ForeignKey(["objID"], "PhotoObj", ["objID"],
                                        name="fk_neighbors_photoobj", allow_null=False)],
            "description": "Pre-computed list of objects within 0.5 arcminutes of each object",
        },
        "USNO": {
            "columns": usno_columns(),
            "primary_key": PrimaryKey(["objID"]),
            "foreign_keys": [ForeignKey(["objID"], "PhotoObj", ["objID"],
                                        name="fk_usno_photoobj", allow_null=False)],
            "description": "Cross-matches against the USNO astrometric catalog",
        },
        "ROSAT": {
            "columns": rosat_columns(),
            "primary_key": PrimaryKey(["objID"]),
            "foreign_keys": [ForeignKey(["objID"], "PhotoObj", ["objID"],
                                        name="fk_rosat_photoobj", allow_null=False)],
            "description": "Cross-matches against the ROSAT X-ray catalog",
        },
        "FIRST": {
            "columns": first_columns(),
            "primary_key": PrimaryKey(["objID"]),
            "foreign_keys": [ForeignKey(["objID"], "PhotoObj", ["objID"],
                                        name="fk_first_photoobj", allow_null=False)],
            "description": "Cross-matches against the FIRST radio survey",
        },
    }
