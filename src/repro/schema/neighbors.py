"""Pre-computation of the Neighbors table.

"One table, neighbors, is computed after the data is loaded.  For every
object the neighbors table contains a list of all other objects within
½ arcminute of the object (typically 10 objects).  This speeds
proximity searches." (paper §9.1.1)

Two builders are provided:

* :func:`compute_neighbors` — a declination-band sweep that is linear
  in the number of objects (how a production build would do it);
* :func:`compute_neighbors_htm` — a per-object HTM cone search, the
  straightforward-but-slower formulation used by the ablation benchmark
  to quantify what the materialised table buys.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ..engine import Database
from ..htm import arcmin_between, cover_circle, ranges_contain

#: The paper's neighbourhood radius: half an arcminute.
DEFAULT_RADIUS_ARCMIN = 0.5


def compute_neighbors(database: Database, *,
                      radius_arcmin: float = DEFAULT_RADIUS_ARCMIN,
                      truncate: bool = True) -> int:
    """Populate the Neighbors table by a declination-band sweep.

    Objects are bucketed into declination bands one search radius tall;
    each object is compared only against objects in its own and the two
    adjacent bands whose right ascension is within the (cos dec
    corrected) search window.  Returns the number of neighbour pairs
    inserted (each unordered pair contributes two rows, one per
    direction, exactly as the SkyServer table does).
    """
    photo = database.table("PhotoObj")
    neighbors = database.table("Neighbors")
    if truncate:
        neighbors.truncate()
    radius_degrees = radius_arcmin / 60.0
    band_height = max(radius_degrees, 1.0e-6)

    bands: dict[int, list[dict]] = {}
    for _row_id, row in photo.iter_rows():
        band = int(math.floor(row["dec"] / band_height))
        bands.setdefault(band, []).append(row)
    for rows in bands.values():
        rows.sort(key=lambda row: row["ra"])

    inserted = 0
    pairs: list[dict] = []
    for band, rows in bands.items():
        candidate_rows: list[dict] = []
        for neighbour_band in (band - 1, band, band + 1):
            candidate_rows.extend(bands.get(neighbour_band, ()))
        candidate_rows.sort(key=lambda row: row["ra"])
        for row in rows:
            cos_dec = max(0.05, math.cos(math.radians(row["dec"])))
            ra_window = radius_degrees / cos_dec
            for candidate in _ra_window(candidate_rows, row["ra"], ra_window):
                if candidate["objid"] == row["objid"]:
                    continue
                distance = arcmin_between(row["ra"], row["dec"],
                                          candidate["ra"], candidate["dec"])
                if distance <= radius_arcmin:
                    pairs.append({
                        "objID": row["objid"],
                        "neighborObjID": candidate["objid"],
                        "distance": distance,
                        "neighborType": candidate["type"],
                        "neighborMode": candidate["mode"],
                    })
                    inserted += 1
    neighbors.insert_many(pairs, database=database)
    return inserted


def _ra_window(sorted_rows: list[dict], ra: float, window: float) -> Iterable[dict]:
    """Rows whose RA lies within ``window`` degrees of ``ra`` (sorted input)."""
    import bisect

    ras = [row["ra"] for row in sorted_rows]
    low = bisect.bisect_left(ras, ra - window)
    high = bisect.bisect_right(ras, ra + window)
    for position in range(low, high):
        yield sorted_rows[position]
    # Handle RA wrap-around near 0/360 degrees.
    if ra - window < 0.0:
        low = bisect.bisect_left(ras, ra - window + 360.0)
        for position in range(low, len(sorted_rows)):
            yield sorted_rows[position]
    if ra + window > 360.0:
        high = bisect.bisect_right(ras, ra + window - 360.0)
        for position in range(0, high):
            yield sorted_rows[position]


def compute_neighbors_htm(database: Database, *,
                          radius_arcmin: float = DEFAULT_RADIUS_ARCMIN,
                          limit_objects: Optional[int] = None,
                          truncate: bool = True) -> int:
    """Populate Neighbors via a per-object HTM cone search (ablation baseline).

    This is the formulation a user would write without the materialised
    table: for every object, compute the HTM cover of a half-arcminute
    circle and probe the htmID index.  It produces identical pairs to
    :func:`compute_neighbors` but costs one cover per object, which is
    what the Neighbors ablation benchmark measures.
    """
    photo = database.table("PhotoObj")
    neighbors = database.table("Neighbors")
    if truncate:
        neighbors.truncate()
    htm_index = photo.find_index_on(["htmID"])
    pairs: list[dict] = []
    count = 0
    for _row_id, row in photo.iter_rows():
        if limit_objects is not None and count >= limit_objects:
            break
        count += 1
        ranges = cover_circle(row["ra"], row["dec"], radius_arcmin)
        candidate_ids: set[int] = set()
        if htm_index is not None:
            for htm_range in ranges:
                for row_id in htm_index.range((htm_range.low,), (htm_range.high,)):
                    candidate_ids.add(row_id)
        else:
            for row_id, candidate in photo.iter_rows():
                if ranges_contain(ranges, candidate["htmid"]):
                    candidate_ids.add(row_id)
        for row_id in candidate_ids:
            candidate = photo.get_row(row_id)
            if candidate is None or candidate["objid"] == row["objid"]:
                continue
            distance = arcmin_between(row["ra"], row["dec"],
                                      candidate["ra"], candidate["dec"])
            if distance <= radius_arcmin:
                pairs.append({
                    "objID": row["objid"],
                    "neighborObjID": candidate["objid"],
                    "distance": distance,
                    "neighborType": candidate["type"],
                    "neighborMode": candidate["mode"],
                })
    neighbors.insert_many(pairs, database=database)
    return len(pairs)
