"""Sub-classing views over PhotoObj and SpecObj (paper §9.1.3).

    photoPrimary: PhotoObj with flags('primary' & 'OK run')
    Star:         photoPrimary with type='star'
    Galaxy:       photoPrimary with type='galaxy'

"Most users work in terms of these views rather than the base table.
This is the equivalent of sub-classing."  The engine's planner folds a
view reference down to the base table and ANDs the view predicate into
the query, so base-table indices benefit the views.
"""

from __future__ import annotations

from ..engine import View
from ..engine.sql import parse_expression
from .flags import PhotoFlags, PhotoType, SpecClass


def _flags_predicate(*flags: PhotoFlags) -> str:
    mask = 0
    for flag in flags:
        mask |= int(flag)
    return f"(flags & {mask}) = {mask}"


def standard_views() -> list[View]:
    """The views created in every SkyServer database."""
    primary_predicate = _flags_predicate(PhotoFlags.PRIMARY, PhotoFlags.OK_RUN)
    secondary_predicate = (f"(flags & {int(PhotoFlags.SECONDARY)}) = "
                           f"{int(PhotoFlags.SECONDARY)}")
    return [
        View("PhotoPrimary", "PhotoObj", parse_expression(primary_predicate),
             description="Primary survey-quality detections "
                         "(flags 'primary' and 'OK run' both set)"),
        View("PhotoSecondary", "PhotoObj", parse_expression(secondary_predicate),
             description="Repeat detections in overlap regions"),
        View("Star", "PhotoPrimary",
             parse_expression(f"type = {int(PhotoType.STAR)}"),
             description="Primary objects classified as stars"),
        View("Galaxy", "PhotoPrimary",
             parse_expression(f"type = {int(PhotoType.GALAXY)}"),
             description="Primary objects classified as galaxies"),
        View("Unknown", "PhotoPrimary",
             parse_expression(f"type = {int(PhotoType.UNKNOWN)}"),
             description="Primary objects the pipeline could not classify"),
        View("Sky", "PhotoObj",
             parse_expression(f"type = {int(PhotoType.SKY)}"),
             description="Blank-sky detections used for calibration"),
        View("SpecObjAll", "SpecObj", None,
             description="All spectra, including low-confidence redshifts"),
        View("SpecGalaxy", "SpecObj",
             parse_expression(f"specClass = {int(SpecClass.GALAXY)} and zConf > 0.35"),
             description="Confident galaxy spectra"),
        View("SpecQSO", "SpecObj",
             parse_expression(
                 f"(specClass = {int(SpecClass.QSO)} or specClass = {int(SpecClass.HIZ_QSO)}) "
                 "and zConf > 0.35"),
             description="Confident quasar spectra (including high-redshift quasars)"),
        View("SpecStar", "SpecObj",
             parse_expression(f"specClass = {int(SpecClass.STAR)} and zConf > 0.35"),
             description="Confident stellar spectra"),
    ]


def register_views(database) -> None:
    """Create the standard views in ``database`` (idempotent)."""
    for view in standard_views():
        if not database.has_view(view.name):
            database.create_view(view)
