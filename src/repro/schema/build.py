"""Assemble an empty SkyServer database in the engine.

``create_skyserver_database()`` creates every table of both snowflake
schemas with their primary/foreign keys, the sub-classing views, the
flag helper functions and (optionally) the standard index set, giving
back an engine :class:`~repro.engine.Database` that the loader can
populate and the SkyServer service layer can query.
"""

from __future__ import annotations

from ..engine import Database
from .flags import register_flag_functions
from .indices import create_indices
from .photo import photo_tables, profile_value
from .spectro import spectro_tables
from .views import register_views

#: Creation order respects foreign-key dependencies (referenced tables first).
TABLE_ORDER = [
    "Field", "Frame", "PhotoObj", "Profile", "Neighbors",
    "USNO", "ROSAT", "FIRST",
    "Plate", "SpecObj", "SpecLine", "SpecLineIndex", "xcRedShift", "elRedShift",
]


def create_skyserver_database(name: str = "SkyServer", *,
                              with_indices: bool = True,
                              with_views: bool = True) -> Database:
    """Create the full (empty) SkyServer schema.

    Parameters
    ----------
    name:
        Catalog name.
    with_indices:
        Create the standard index set immediately.  Bulk loads may
        prefer ``False`` and a later :func:`~repro.schema.indices.create_indices`
        call, mirroring warehouse practice.
    with_views:
        Create the sub-classing views (PhotoPrimary, Star, Galaxy, ...).
    """
    database = Database(name, description=(
        "Sloan Digital Sky Survey SkyServer: photographic and spectroscopic "
        "snowflake schemas (reproduction of the SIGMOD 2002 design)"))
    definitions = dict(photo_tables())
    definitions.update(spectro_tables())
    for table_name in TABLE_ORDER:
        definition = definitions[table_name]
        database.create_table(
            table_name,
            definition["columns"],
            primary_key=definition["primary_key"],
            foreign_keys=definition["foreign_keys"],
            description=definition["description"],
        )
    register_schema_functions(database)
    if with_views:
        register_views(database)
    if with_indices:
        create_indices(database)
    return database


def register_schema_functions(database: Database) -> None:
    """(Re-)register the schema's code-defined scalar functions.

    Function implementations are Python callables, so a durable
    checkpoint cannot serialize them; reopening a database from disk
    calls this to restore the ``dbo.f*`` surface the views and the
    20-query suite use.
    """
    register_flag_functions(database)
    database.register_scalar_function(
        "fProfileValue", profile_value,
        description="Extract one radial-profile element from a Profile blob",
        replace=True)


def table_load_order() -> list[str]:
    """The order in which the loader must populate the tables (FK parents first)."""
    return list(TABLE_ORDER)
