"""The SkyServer relational design: schemas, views, flags, indices, neighbours."""

from .build import (create_skyserver_database, register_schema_functions,
                    table_load_order)
from .flags import (BANDS, MAGNITUDE_KINDS, PhotoFlags, PhotoStatus, PhotoType,
                    SpecClass, SpecLineNames, fphoto_flags, fphoto_status,
                    fphoto_type, fphoto_type_name, fspec_class, fspec_class_name,
                    register_flag_functions)
from .indices import (MAX_KEY_COLUMNS, IndexDefinition, create_indices,
                      drop_indices, standard_indices)
from .neighbors import (DEFAULT_RADIUS_ARCMIN, compute_neighbors,
                        compute_neighbors_htm)
from .photo import photo_tables
from .spectro import spectro_tables
from .views import register_views, standard_views

__all__ = [
    "create_skyserver_database",
    "register_schema_functions",
    "table_load_order",
    "photo_tables",
    "spectro_tables",
    "standard_views",
    "register_views",
    "standard_indices",
    "create_indices",
    "drop_indices",
    "IndexDefinition",
    "MAX_KEY_COLUMNS",
    "compute_neighbors",
    "compute_neighbors_htm",
    "DEFAULT_RADIUS_ARCMIN",
    "PhotoFlags",
    "PhotoStatus",
    "PhotoType",
    "SpecClass",
    "SpecLineNames",
    "BANDS",
    "MAGNITUDE_KINDS",
    "fphoto_flags",
    "fphoto_status",
    "fphoto_type",
    "fphoto_type_name",
    "fspec_class",
    "fspec_class_name",
    "register_flag_functions",
]
