"""The SkyServer index set (paper §9.1.3).

"Today, the SkyServer database has tens of indices ... indices perform
the role of tag tables and lower the intellectual load on the user.
In addition to giving a column subset that speeds sequential scans by
ten to one hundred fold, indices also cluster data so that range
searches are limited to just one part of the object space."

The definitions below reproduce the roles the paper calls out:

* the HTM index on PhotoObj that drives the spatial functions;
* a (run, camcol, field) index covering the columns the NEO pair query
  needs ("there is a covering index for the attributes", §11), so the
  modified Query 15 becomes a nested-loop join of two index scans
  (Figure 12);
* colour/type "tag table" substitutes used by the colour-cut scans;
* foreign-key indices on every snowflake arm.

SQL Server 2000 limits indices to 16 key columns; the definitions here
respect the same limit (wider column sets go into ``included``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..engine import Database
from ..engine.errors import SchemaError

#: The same 16-column key limit the paper mentions for SQL Server 2000.
MAX_KEY_COLUMNS = 16


@dataclass(frozen=True)
class IndexDefinition:
    """Declarative description of one index."""

    table: str
    name: str
    key_columns: Sequence[str]
    included_columns: Sequence[str] = ()
    unique: bool = False
    purpose: str = ""

    def __post_init__(self) -> None:
        if len(self.key_columns) > MAX_KEY_COLUMNS:
            raise SchemaError(
                f"index {self.name!r} has {len(self.key_columns)} key columns; "
                f"SQL Server 2000 (and this reproduction) allows at most {MAX_KEY_COLUMNS}")


def standard_indices() -> list[IndexDefinition]:
    """The index set created after every load."""
    neo_covering = [
        "run", "camcol", "field",
        "objID", "parentID",
        "q_r", "u_r", "q_g", "u_g",
        "fiberMag_u", "fiberMag_g", "fiberMag_r", "fiberMag_i", "fiberMag_z",
        "isoA_r", "isoB_r", "isoA_g", "isoB_g",
        "cx", "cy", "cz",
    ]
    return [
        # -- PhotoObj -------------------------------------------------------
        IndexDefinition("PhotoObj", "ix_photoobj_htm", ["htmID"],
                        included_columns=["ra", "dec", "cx", "cy", "cz", "type",
                                          "mode", "flags", "modelMag_r"],
                        purpose="Spatial searches: HTM range scans for cone/region queries"),
        IndexDefinition("PhotoObj", "ix_photoobj_field", ["run", "camcol", "field"],
                        included_columns=neo_covering[3:],
                        purpose="Field-locality queries; covering index for the NEO pair "
                                "query of Figure 12"),
        IndexDefinition("PhotoObj", "ix_photoobj_type_mag", ["type", "modelMag_r"],
                        included_columns=["modelMag_u", "modelMag_g", "modelMag_i",
                                          "modelMag_z", "flags", "mode", "ra", "dec"],
                        purpose="Colour-cut scans: a tag-table substitute keyed by class "
                                "and brightness"),
        IndexDefinition("PhotoObj", "ix_photoobj_radec", ["dec", "ra"],
                        included_columns=["type", "mode", "flags"],
                        purpose="Declination-band range scans"),
        IndexDefinition("PhotoObj", "ix_photoobj_parent", ["parentID"],
                        purpose="Deblend family navigation (parents and children)"),
        IndexDefinition("PhotoObj", "ix_photoobj_specobj", ["specObjID"],
                        purpose="Photo-to-spectro navigation"),
        IndexDefinition("PhotoObj", "ix_photoobj_fieldid", ["fieldID"],
                        purpose="Foreign-key support: objects of a field"),
        # -- Field / Frame --------------------------------------------------
        IndexDefinition("Field", "ix_field_run", ["run", "camcol", "field"], unique=True,
                        purpose="Lookup of a field by its survey coordinates"),
        IndexDefinition("Frame", "ix_frame_field_zoom", ["fieldID", "zoom"], unique=True,
                        purpose="Image-pyramid tile lookup for the navigation interface"),
        IndexDefinition("Frame", "ix_frame_run", ["run", "camcol", "field", "zoom"],
                        purpose="Tile lookup by survey coordinates"),
        # -- Snowflake arms -------------------------------------------------
        IndexDefinition("Profile", "ix_profile_obj", ["objID", "nBins"], unique=True,
                        purpose="Profile array access by object"),
        IndexDefinition("Neighbors", "ix_neighbors_obj", ["objID"],
                        included_columns=["neighborObjID", "distance", "neighborType"],
                        purpose="Proximity searches from the pre-computed neighbour list"),
        IndexDefinition("USNO", "ix_usno_obj", ["objID"], unique=True,
                        purpose="Cross-match navigation to USNO"),
        IndexDefinition("ROSAT", "ix_rosat_obj", ["objID"], unique=True,
                        purpose="Cross-match navigation to ROSAT"),
        IndexDefinition("FIRST", "ix_first_obj", ["objID"], unique=True,
                        purpose="Cross-match navigation to FIRST"),
        # -- Spectroscopy ----------------------------------------------------
        IndexDefinition("SpecObj", "ix_specobj_obj", ["objID"],
                        included_columns=["z", "zConf", "specClass"],
                        purpose="Photo-to-spectro joins"),
        IndexDefinition("SpecObj", "ix_specobj_class_z", ["specClass", "z"],
                        included_columns=["zConf", "ra", "dec"],
                        purpose="Redshift-range scans by spectral class"),
        IndexDefinition("SpecObj", "ix_specobj_plate", ["plateID", "fiberID"], unique=True,
                        purpose="Plate/fiber navigation"),
        IndexDefinition("SpecLine", "ix_specline_specobj", ["specObjID", "lineID"],
                        included_columns=["ew", "height", "sigma"],
                        purpose="Spectral-line lookups by spectrum (the paper's example query)"),
        IndexDefinition("SpecLineIndex", "ix_speclineindex_specobj", ["specObjID"],
                        purpose="Line-index lookups by spectrum"),
        IndexDefinition("xcRedShift", "ix_xcredshift_specobj", ["specObjID"],
                        purpose="Cross-correlation redshift lookups by spectrum"),
        IndexDefinition("elRedShift", "ix_elredshift_specobj", ["specObjID"],
                        purpose="Emission-line redshift lookups by spectrum"),
    ]


def create_indices(database: Database,
                   definitions: Sequence[IndexDefinition] | None = None) -> int:
    """Create every index that does not already exist; returns how many were built."""
    created = 0
    for definition in definitions if definitions is not None else standard_indices():
        if not database.has_table(definition.table):
            continue
        table = database.table(definition.table)
        existing = {name.lower() for name in table.indexes}
        if definition.name.lower() in existing:
            continue
        table.create_index(definition.name, list(definition.key_columns),
                           unique=definition.unique,
                           included_columns=list(definition.included_columns))
        created += 1
    return created


def drop_indices(database: Database, table: str) -> int:
    """Drop the standard (non-primary-key) indices of a table; returns how many."""
    if not database.has_table(table):
        return 0
    table_object = database.table(table)
    victims = [name for name in table_object.indexes if not name.lower().startswith("pk_")]
    for name in victims:
        table_object.drop_index(name)
    return len(victims)
