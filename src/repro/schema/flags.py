"""Photo flags, status bits, object types and spectral classes.

The processing pipeline "assigns about a hundred additional properties
to each object – these attributes are variously called flags, status,
and type and are encoded as bit flags" (paper §9).  The SkyServer
exposes the bit values through small scalar functions so queries can
say ``flags & fPhotoFlags('saturated')`` instead of magic numbers; the
same functions are registered into the engine here.
"""

from __future__ import annotations

import enum
from typing import Iterable


class PhotoFlags(enum.IntFlag):
    """Bit flags of the ``flags`` column of PhotoObj.

    The real pipeline defines 59 bits across two 32-bit words; this
    reproduction keeps the bits the paper's queries and views use, plus
    the most common quality bits, in a single 64-bit word.
    """

    PRIMARY = 0x1            # best observation of a deblended object
    OK_RUN = 0x2             # the run met survey quality requirements
    SATURATED = 0x4          # at least one pixel is saturated (Query 1)
    BRIGHT = 0x8             # duplicate detection of a bright object
    EDGE = 0x10              # object too close to the frame edge
    BLENDED = 0x20           # object has deblended children
    CHILD = 0x40             # object is a deblended child
    DEBLENDED_AS_MOVING = 0x80   # deblend used a moving-object model (asteroids)
    COSMIC_RAY = 0x100       # contains a cosmic ray hit
    INTERP = 0x200           # interpolated over bad pixels
    NOPROFILE = 0x400        # too small / too faint to measure a radial profile
    SECONDARY = 0x800        # repeat observation in an overlap region
    MOVED = 0x1000           # detectably moved between band exposures


class PhotoStatus(enum.IntFlag):
    """Bits of the ``status`` column (survey bookkeeping)."""

    SET = 0x1
    GOOD = 0x2
    DUPLICATE = 0x4
    OK_RUN = 0x8
    RESOLVED = 0x10
    PSEGMENT = 0x20
    FIRST_FIELD = 0x100
    OK_SCANLINE = 0x200
    OK_STRIPE = 0x400
    SECONDARY = 0x1000
    PRIMARY = 0x2000
    TARGETED = 0x4000


class PhotoType(enum.IntEnum):
    """The classification assigned by the frames pipeline (``type`` column)."""

    UNKNOWN = 0
    COSMIC_RAY = 1
    DEFECT = 2
    GALAXY = 3
    GHOST = 4
    KNOWN_OBJECT = 5
    STAR = 6
    TRAIL = 7
    SKY = 8


class SpecClass(enum.IntEnum):
    """Spectroscopic classification (``specClass`` column of SpecObj)."""

    UNKNOWN = 0
    STAR = 1
    GALAXY = 2
    QSO = 3
    HIZ_QSO = 4
    SKY = 5
    STAR_LATE = 6
    GAL_EM = 7


class SpecLineNames(enum.IntEnum):
    """A subset of rest-frame spectral lines extracted by the 1D pipeline."""

    UNKNOWN = 0
    H_ALPHA = 6565
    H_BETA = 4863
    H_GAMMA = 4342
    OIII_5007 = 5008
    OII_3727 = 3727
    NII_6585 = 6585
    SII_6718 = 6718
    MG_5177 = 5177
    NA_5896 = 5896
    CA_K_3935 = 3935
    CA_H_3970 = 3970
    G_4306 = 4306
    LY_ALPHA = 1216
    CIV_1549 = 1549
    MGII_2799 = 2799


#: The five SDSS optical bands, in the canonical order.
BANDS = ("u", "g", "r", "i", "z")

#: The six ways the pipeline measures a magnitude in each band
#: ("These magnitudes are measured in six different ways", paper §9).
MAGNITUDE_KINDS = ("psfMag", "fiberMag", "petroMag", "modelMag", "expMag", "deVMag")


def fphoto_flags(name: str) -> int:
    """``fPhotoFlags('saturated')`` — the bit value for a named photo flag."""
    return int(PhotoFlags[_normalise(name)])


def fphoto_status(name: str) -> int:
    """``fPhotoStatus('primary')`` — the bit value for a named status flag."""
    return int(PhotoStatus[_normalise(name)])


def fphoto_type(name: str) -> int:
    """``fPhotoType('galaxy')`` — the numeric code for a named object type."""
    return int(PhotoType[_normalise(name)])


def fphoto_type_name(value: int) -> str:
    """``fPhotoTypeN(3)`` — the name for a numeric object type."""
    return PhotoType(int(value)).name.lower()


def fspec_class(name: str) -> int:
    """``fSpecClass('qso')`` — the numeric code for a spectral class."""
    return int(SpecClass[_normalise(name)])


def fspec_class_name(value: int) -> str:
    """``fSpecClassN(3)`` — the name for a numeric spectral class."""
    return SpecClass(int(value)).name.lower()


def fphoto_flags_describe(flags: int) -> str:
    """Render a flags word as a '+'-separated list of flag names."""
    names = [flag.name for flag in PhotoFlags if flag.name and flags & flag]
    return "+".join(names) if names else "none"


def _normalise(name: str) -> str:
    cleaned = name.strip().upper().replace(" ", "_").replace("-", "_")
    aliases = {
        "OKRUN": "OK_RUN",
        "OK RUN": "OK_RUN",
        "DEBLENDED_MOVING": "DEBLENDED_AS_MOVING",
        "QUASAR": "QSO",
        "HIZ_QUASAR": "HIZ_QSO",
    }
    return aliases.get(cleaned, cleaned)


def register_flag_functions(database) -> None:
    """Register the flag helper functions into an engine database."""
    database.register_scalar_function(
        "fPhotoFlags", fphoto_flags,
        description="Bit value of a named photo flag (e.g. 'saturated')", replace=True)
    database.register_scalar_function(
        "fPhotoStatus", fphoto_status,
        description="Bit value of a named status flag", replace=True)
    database.register_scalar_function(
        "fPhotoType", fphoto_type,
        description="Numeric code of a named photo type (e.g. 'galaxy')", replace=True)
    database.register_scalar_function(
        "fPhotoTypeN", fphoto_type_name,
        description="Name of a numeric photo type code", replace=True)
    database.register_scalar_function(
        "fSpecClass", fspec_class,
        description="Numeric code of a named spectral class", replace=True)
    database.register_scalar_function(
        "fSpecClassN", fspec_class_name,
        description="Name of a numeric spectral class code", replace=True)
    database.register_scalar_function(
        "fPhotoFlagsN", fphoto_flags_describe,
        description="Names of the flags set in a flags word", replace=True)


def magnitude_columns() -> Iterable[tuple[str, str, str]]:
    """Yield (column, kind, band) for every magnitude column of PhotoObj."""
    for kind in MAGNITUDE_KINDS:
        for band in BANDS:
            yield f"{kind}_{band}", kind, band
