"""Web-log analysis: the numbers behind Figure 5 and Section 7.

The analyzer consumes a :class:`~repro.traffic.weblog.WebLog` (or just
its daily records) and produces the same statistics the paper reports:
total hits / page views / sessions, the daily series of Figure 5,
monthly aggregates, sub-web and education shares, crawler share,
hacker-attempt rate, uptime percentage and the sustained daily usage.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Sequence

from .weblog import LogRecord, WebLog


@dataclass
class DailyPoint:
    """One point of the Figure 5 time series."""

    date: _dt.date
    hits: int
    page_views: int
    sessions: int


@dataclass
class TrafficReport:
    """Aggregate statistics over the whole operating period."""

    days: int
    total_hits: int
    total_page_views: int
    total_sessions: int
    crawler_hit_fraction: float
    japanese_page_fraction: float
    german_page_fraction: float
    education_page_fraction: float
    education_page_views_per_day: float
    hacker_attempts_per_day: float
    uptime_percent: float
    mean_sessions_per_day: float
    mean_page_views_per_day: float
    peak_day: _dt.date
    peak_to_mean_page_ratio: float
    daily: list[DailyPoint] = field(default_factory=list)
    monthly: dict[str, dict[str, int]] = field(default_factory=dict)

    def summary_rows(self) -> list[tuple[str, str]]:
        """Human-readable (metric, value) pairs for the benchmark report."""
        return [
            ("days of operation", str(self.days)),
            ("total hits", f"{self.total_hits:,}"),
            ("total page views", f"{self.total_page_views:,}"),
            ("total sessions", f"{self.total_sessions:,}"),
            ("crawler share of hits", f"{self.crawler_hit_fraction:.1%}"),
            ("Japanese sub-web share", f"{self.japanese_page_fraction:.1%}"),
            ("German sub-web share", f"{self.german_page_fraction:.1%}"),
            ("education share of page views", f"{self.education_page_fraction:.1%}"),
            ("education page views per day", f"{self.education_page_views_per_day:.0f}"),
            ("hacker attempts per day", f"{self.hacker_attempts_per_day:.1f}"),
            ("uptime", f"{self.uptime_percent:.2f}%"),
            ("sustained sessions per day", f"{self.mean_sessions_per_day:.0f}"),
            ("sustained page views per day", f"{self.mean_page_views_per_day:.0f}"),
            ("peak day", self.peak_day.isoformat()),
            ("peak-to-mean page views", f"{self.peak_to_mean_page_ratio:.1f}x"),
        ]


def analyze(log: WebLog | Sequence[LogRecord]) -> TrafficReport:
    """Compute the full traffic report from a log."""
    daily_records = list(log.daily if isinstance(log, WebLog) else log)
    if not daily_records:
        raise ValueError("cannot analyze an empty web log")

    total_hits = sum(record.hits for record in daily_records)
    total_pages = sum(record.page_views for record in daily_records)
    total_sessions = sum(record.sessions for record in daily_records)
    crawler_hits = sum(record.crawler_hits for record in daily_records)
    education_pages = sum(record.education_page_views for record in daily_records)
    japanese_pages = sum(record.japanese_page_views for record in daily_records)
    german_pages = sum(record.german_page_views for record in daily_records)
    hacker_attempts = sum(record.hacker_attempts for record in daily_records)
    days = len(daily_records)

    daily_points = [DailyPoint(record.date, record.hits, record.page_views, record.sessions)
                    for record in daily_records]
    peak = max(daily_records, key=lambda record: record.page_views)
    mean_pages = total_pages / days

    monthly: dict[str, dict[str, int]] = {}
    for record in daily_records:
        key = record.date.strftime("%Y-%m")
        bucket = monthly.setdefault(key, {"hits": 0, "page_views": 0, "sessions": 0})
        bucket["hits"] += record.hits
        bucket["page_views"] += record.page_views
        bucket["sessions"] += record.sessions

    return TrafficReport(
        days=days,
        total_hits=total_hits,
        total_page_views=total_pages,
        total_sessions=total_sessions,
        crawler_hit_fraction=crawler_hits / total_hits if total_hits else 0.0,
        japanese_page_fraction=japanese_pages / total_pages if total_pages else 0.0,
        german_page_fraction=german_pages / total_pages if total_pages else 0.0,
        education_page_fraction=education_pages / total_pages if total_pages else 0.0,
        education_page_views_per_day=education_pages / days,
        hacker_attempts_per_day=hacker_attempts / days,
        uptime_percent=100.0 * sum(record.uptime_fraction for record in daily_records) / days,
        mean_sessions_per_day=total_sessions / days,
        mean_page_views_per_day=mean_pages,
        peak_day=peak.date,
        peak_to_mean_page_ratio=peak.page_views / mean_pages if mean_pages else 0.0,
        daily=daily_points,
        monthly=monthly,
    )


def ascii_chart(report: TrafficReport, *, width: int = 60, monthly: bool = True) -> str:
    """A log-scale ASCII rendering of Figure 5 (hits / page views / sessions)."""
    import math

    lines = ["SkyServer traffic (log scale)",
             f"{'month' if monthly else 'date':>8s}  {'hits':>9s} {'pages':>9s} {'sessions':>9s}"]
    if monthly:
        series = [(month, values["hits"], values["page_views"], values["sessions"])
                  for month, values in sorted(report.monthly.items())]
    else:
        series = [(point.date.isoformat(), point.hits, point.page_views, point.sessions)
                  for point in report.daily]
    peak = max((hits for _label, hits, _p, _s in series), default=1)
    for label, hits, pages, sessions in series:
        bar_length = int(width * math.log10(max(hits, 1) + 1) / math.log10(peak + 1))
        lines.append(f"{label:>8s}  {hits:9d} {pages:9d} {sessions:9d}  " + "#" * bar_length)
    return "\n".join(lines)
