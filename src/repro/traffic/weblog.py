"""Synthetic SkyServer web traffic (paper §7, Figure 5).

The paper reports the first seven months of operation (June 2001 to
February 2002): about 2.5 million hits, a million page views, seventy
thousand sessions, 4% Japanese and 3% German sub-web traffic, 8% of
page views to the education projects, roughly 30% of traffic from
crawlers, about five "hacker attacks" per day, two network outages
(22 June and 26 July), a 20x spike from a TV show on 2 October, peaks
around conference demonstrations and classroom use, 14 reboots and
99.83% uptime.

The generator below is parameterised by exactly those published
aggregates and produces a per-request log; the analyzer in
:mod:`repro.traffic.analyze` recomputes the aggregates from the log, so
the Figure 5 benchmark is a real measurement of the analysis code, not
an echo of the input parameters.
"""

from __future__ import annotations

import datetime as _dt
import math
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Operating period covered by the paper's Figure 5.
DEFAULT_START = _dt.date(2001, 6, 1)
DEFAULT_END = _dt.date(2002, 2, 28)

#: Page categories the site serves.
PAGE_CATEGORIES = ("home", "famous_places", "navigation", "object_explorer",
                   "sql_query", "education", "documentation", "download")

#: Sub-webs (language branches).
SUBWEBS = ("en", "jp", "de")


@dataclass
class TrafficModelConfig:
    """Knobs of the synthetic traffic model, calibrated to §7."""

    start: _dt.date = DEFAULT_START
    end: _dt.date = DEFAULT_END
    sessions_total: int = 70000
    pages_per_session: float = 14.0
    hits_per_page: float = 2.5
    crawler_hit_fraction: float = 0.30
    japanese_fraction: float = 0.04
    german_fraction: float = 0.03
    education_fraction: float = 0.08
    hacker_attempts_per_day: float = 5.0
    growth_factor: float = 3.0           # traffic grows over the period
    weekday_boost: float = 1.25
    outage_dates: tuple[_dt.date, ...] = (_dt.date(2001, 6, 22), _dt.date(2001, 7, 26))
    tv_show_date: _dt.date = _dt.date(2001, 10, 2)
    tv_show_boost: float = 20.0
    conference_dates: tuple[_dt.date, ...] = (_dt.date(2002, 1, 8),)
    conference_boost: float = 4.0
    reboots: int = 14
    reboot_software: int = 8              # 5-minute patch outages
    reboot_power: int = 5                 # multi-hour power/operations outages
    seed: int = 2001


@dataclass
class Session:
    """One user (or crawler) session."""

    session_id: int
    date: _dt.date
    subweb: str
    is_crawler: bool
    pages: int
    hits: int
    education_pages: int


@dataclass
class LogRecord:
    """One aggregated per-day log line per traffic class (keeps logs compact)."""

    date: _dt.date
    sessions: int
    page_views: int
    hits: int
    crawler_hits: int
    education_page_views: int
    japanese_page_views: int
    german_page_views: int
    hacker_attempts: int
    uptime_fraction: float


@dataclass
class WebLog:
    """The synthetic log: per-session records plus per-day operational records."""

    config: TrafficModelConfig
    sessions: list[Session] = field(default_factory=list)
    daily: list[LogRecord] = field(default_factory=list)

    def days(self) -> int:
        return len(self.daily)


def _day_weight(config: TrafficModelConfig, day: _dt.date) -> float:
    """Relative traffic level of one day (growth, weekday cycle, events, outages)."""
    total_days = (config.end - config.start).days or 1
    position = (day - config.start).days / total_days
    weight = 1.0 + (config.growth_factor - 1.0) * position
    if day.weekday() < 5:
        weight *= config.weekday_boost
    if day == config.tv_show_date:
        weight *= config.tv_show_boost
    if day in config.conference_dates:
        weight *= config.conference_boost
    if day in config.outage_dates:
        weight *= 0.15
    return weight


def generate_weblog(config: Optional[TrafficModelConfig] = None) -> WebLog:
    """Generate the synthetic seven-month log."""
    config = config or TrafficModelConfig()
    rng = random.Random(config.seed)
    log = WebLog(config=config)

    days = [config.start + _dt.timedelta(days=offset)
            for offset in range((config.end - config.start).days + 1)]
    weights = [_day_weight(config, day) for day in days]
    total_weight = sum(weights)

    # Pick which days suffer the reboots (beyond the two network outages).
    reboot_days = set(rng.sample(range(len(days)), min(config.reboots, len(days))))
    software_reboots = set(list(reboot_days)[:config.reboot_software])

    session_id = 0
    for day_index, (day, weight) in enumerate(zip(days, weights)):
        expected_sessions = config.sessions_total * weight / total_weight
        day_sessions = max(0, int(rng.gauss(expected_sessions, math.sqrt(expected_sessions + 1))))
        day_records: list[Session] = []
        for _ in range(day_sessions):
            session_id += 1
            is_crawler = rng.random() < _crawler_session_fraction(config)
            roll = rng.random()
            if roll < config.japanese_fraction:
                subweb = "jp"
            elif roll < config.japanese_fraction + config.german_fraction:
                subweb = "de"
            else:
                subweb = "en"
            pages = max(1, int(rng.expovariate(1.0 / config.pages_per_session)))
            if is_crawler:
                pages = max(5, int(pages * 2.5))
            hits = max(pages, int(pages * rng.gauss(config.hits_per_page, 0.5)))
            education_pages = sum(1 for _ in range(pages)
                                  if rng.random() < config.education_fraction)
            day_records.append(Session(session_id, day, subweb, is_crawler,
                                       pages, hits, education_pages))
        log.sessions.extend(day_records)

        uptime = 1.0
        if day_index in reboot_days:
            uptime = 1.0 - (5.0 / (24 * 60) if day_index in software_reboots
                            else rng.uniform(2.0, 5.0) / 24.0)
        if day in config.outage_dates:
            uptime = min(uptime, 1.0 - rng.uniform(4.0, 8.0) / 24.0)
        log.daily.append(LogRecord(
            date=day,
            sessions=len(day_records),
            page_views=sum(s.pages for s in day_records),
            hits=sum(s.hits for s in day_records),
            crawler_hits=sum(s.hits for s in day_records if s.is_crawler),
            education_page_views=sum(s.education_pages for s in day_records),
            japanese_page_views=sum(s.pages for s in day_records if s.subweb == "jp"),
            german_page_views=sum(s.pages for s in day_records if s.subweb == "de"),
            hacker_attempts=max(0, int(rng.gauss(config.hacker_attempts_per_day, 2.0))),
            uptime_fraction=uptime,
        ))
    return log


def _crawler_session_fraction(config: TrafficModelConfig) -> float:
    """Session-level crawler probability that yields the configured hit fraction.

    Crawler sessions generate ≈2.5x the pages of human sessions, so the
    session fraction is lower than the hit fraction.
    """
    boost = 2.5
    hit_fraction = config.crawler_hit_fraction
    return hit_fraction / (boost + hit_fraction * (1.0 - boost))


def iter_daily(log: WebLog) -> Iterator[LogRecord]:
    return iter(log.daily)
