"""Query-log analysis: Figure-5-style traffic numbers over our own log.

The paper's traffic section was computed from SkyServer's logs — every
statement the site ran was itself stored as data and analyzed with
SQL.  This module closes that loop for the reproduction: it consumes
rows of the durable ``QueryLog`` table (as returned by
:meth:`repro.skyserver.SkyServer.query_log_rows`, i.e. plain dict rows
from a ``SELECT``) and produces the same flavour of aggregate report
that :class:`~repro.traffic.analyze.TrafficReport` produces for the
synthesized web log.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = ["QueryTrafficReport", "analyze_query_log"]


def _get(row: Mapping[str, Any], name: str, default: Any = None) -> Any:
    """Fetch a column case-insensitively (the engine lowercases names)."""
    if name in row:
        return row[name]
    return row.get(name.lower(), default)


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, round((q / 100.0) * len(sorted_values)))
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


def _template(sql: str) -> str:
    """A crude statement template: collapse whitespace, cut at 60 chars.

    Good enough to group the repeated data-mining queries of the Zipf
    mix without a real parameter-stripping normalizer.
    """
    collapsed = " ".join(str(sql).split())
    return collapsed[:60]


@dataclass
class QueryTrafficReport:
    """Aggregate statistics over a served query log."""

    total_queries: int
    completed: int
    failed: int
    cache_hits: int
    plan_cache_hits: int
    slow_queries: int
    total_rows: int
    mean_elapsed_ms: float
    p50_elapsed_ms: float
    p95_elapsed_ms: float
    p99_elapsed_ms: float
    max_elapsed_ms: float
    by_class: dict[str, int] = field(default_factory=dict)
    top_statements: list[tuple[str, int]] = field(default_factory=list)

    @property
    def cache_hit_fraction(self) -> float:
        return self.cache_hits / self.total_queries if self.total_queries else 0.0

    @property
    def failure_fraction(self) -> float:
        return self.failed / self.total_queries if self.total_queries else 0.0

    def summary_rows(self) -> list[tuple[str, str]]:
        """Human-readable (metric, value) pairs for reports."""
        rows = [
            ("queries logged", f"{self.total_queries:,}"),
            ("completed", f"{self.completed:,}"),
            ("failed", f"{self.failed:,}"),
            ("result-cache hit rate", f"{self.cache_hit_fraction:.1%}"),
            ("plan-cache hit rate",
             (f"{self.plan_cache_hits / self.total_queries:.1%}"
              if self.total_queries else "0.0%")),
            ("slow queries", f"{self.slow_queries:,}"),
            ("rows returned", f"{self.total_rows:,}"),
            ("mean elapsed", f"{self.mean_elapsed_ms:.2f}ms"),
            ("p50 elapsed", f"{self.p50_elapsed_ms:.2f}ms"),
            ("p95 elapsed", f"{self.p95_elapsed_ms:.2f}ms"),
            ("p99 elapsed", f"{self.p99_elapsed_ms:.2f}ms"),
            ("max elapsed", f"{self.max_elapsed_ms:.2f}ms"),
        ]
        for user_class, count in sorted(self.by_class.items()):
            rows.append((f"class {user_class}", f"{count:,}"))
        for statement, count in self.top_statements:
            rows.append((f"x{count}", statement))
        return rows


def analyze_query_log(rows: Sequence[Mapping[str, Any]],
                      *, top: int = 5) -> QueryTrafficReport:
    """Compute the traffic report from ``QueryLog`` rows.

    ``rows`` is whatever ``SELECT * FROM QueryLog`` returned — the
    analysis layer never touches storage directly, so it works equally
    on a live server's log or one read back after recovery.
    """
    if not rows:
        raise ValueError("cannot analyze an empty query log")

    completed = failed = cache_hits = plan_hits = slow = 0
    total_rows = 0
    elapsed: list[float] = []
    by_class: Counter[str] = Counter()
    statements: Counter[str] = Counter()
    for row in rows:
        status = str(_get(row, "status", "") or "")
        if status == "failed":
            failed += 1
        else:
            completed += 1
        if _get(row, "cacheHit"):
            cache_hits += 1
        if _get(row, "planCached"):
            plan_hits += 1
        if _get(row, "slow"):
            slow += 1
        total_rows += int(_get(row, "rowCount", 0) or 0)
        elapsed.append(float(_get(row, "elapsedMs", 0.0) or 0.0))
        by_class[str(_get(row, "userClass", "") or "unknown")] += 1
        statements[_template(_get(row, "sqlText", "") or "")] += 1

    elapsed.sort()
    total = len(rows)
    return QueryTrafficReport(
        total_queries=total,
        completed=completed,
        failed=failed,
        cache_hits=cache_hits,
        plan_cache_hits=plan_hits,
        slow_queries=slow,
        total_rows=total_rows,
        mean_elapsed_ms=sum(elapsed) / total,
        p50_elapsed_ms=_percentile(elapsed, 50.0),
        p95_elapsed_ms=_percentile(elapsed, 95.0),
        p99_elapsed_ms=_percentile(elapsed, 99.0),
        max_elapsed_ms=elapsed[-1],
        by_class=dict(by_class),
        top_statements=statements.most_common(top),
    )
