"""Web-site usage synthesis and analysis (Figure 5, Section 7)."""

from .analyze import DailyPoint, TrafficReport, analyze, ascii_chart
from .querytraffic import QueryTrafficReport, analyze_query_log
from .weblog import (DEFAULT_END, DEFAULT_START, LogRecord, Session,
                     TrafficModelConfig, WebLog, generate_weblog)

__all__ = [
    "QueryTrafficReport",
    "analyze_query_log",
    "TrafficModelConfig",
    "WebLog",
    "LogRecord",
    "Session",
    "generate_weblog",
    "DEFAULT_START",
    "DEFAULT_END",
    "analyze",
    "ascii_chart",
    "TrafficReport",
    "DailyPoint",
]
