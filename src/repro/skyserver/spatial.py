"""Spatial access functions (paper §9.1.4).

``spHTM_Cover(<area>)`` returns the HTM ranges covering an area, and the
"simpler functions" layered on top return actual objects:
``fGetNearbyObjEq(ra, dec, radius_arcmin)`` lists every object within
the radius (with its distance), ``fGetNearestObjEq`` returns the single
closest one, and ``fGetObjFromRectEq`` returns the objects inside an
(ra, dec) rectangle.  All of them are table-valued functions the SQL
layer can join against PhotoObj — Query 1's plan (Figure 10) is exactly
such a join.
"""

from __future__ import annotations

from typing import Iterable

from ..engine import Database, bigint, floating, integer
from ..htm import (DEFAULT_DEPTH, HtmRange, arcmin_between, cover,
                   cover_circle, lookup_id, RectangleEq)


def htm_cover_circle(ra: float, dec: float, radius_arcmin: float) -> list[dict]:
    """``spHTM_Cover`` for a circle: rows of (htmIDstart, htmIDend)."""
    return [{"htmIDstart": r.low, "htmIDend": r.high}
            for r in cover_circle(ra, dec, radius_arcmin)]


def _merge_ranges(ranges: Iterable[HtmRange]) -> list[tuple[int, int]]:
    """Collapse overlapping or adjacent HTM cover ranges into disjoint spans.

    HTM ids are integers and the ranges are inclusive, so ``[2, 5]`` and
    ``[6, 9]`` merge into ``[2, 9]``.  Covers produced by recursive
    trixel subdivision routinely emit sibling ranges that abut or
    overlap; merging them means each B-tree region is probed exactly
    once and — because the merged spans are disjoint — no row can be
    returned twice, so callers need no dedup set.
    """
    spans = sorted((r.low, r.high) for r in ranges)
    merged: list[list[int]] = []
    for low, high in spans:
        if merged and low <= merged[-1][1] + 1:
            if high > merged[-1][1]:
                merged[-1][1] = high
        else:
            merged.append([low, high])
    return [(low, high) for low, high in merged]


def _candidate_rows(database: Database, ranges: Iterable[HtmRange]) -> Iterable[dict]:
    """Rows of PhotoObj whose htmID falls in any cover range.

    Uses the htmID B-tree index when it exists (the design's fast path);
    falls back to a scan otherwise so the functions still work on
    databases loaded without indices.  Ranges are merged first, so each
    index region is scanned once and every candidate row surfaces once.
    """
    photo = database.table("PhotoObj")
    spans = _merge_ranges(ranges)
    index = photo.find_index_on(["htmID"])
    if index is not None:
        for low, high in spans:
            for row_id in index.range((low,), (high,)):
                row = photo.get_row(row_id)
                if row is not None:
                    yield row
        return
    for _row_id, row in photo.iter_rows():
        htm_id = row["htmid"]
        if any(low <= htm_id <= high for low, high in spans):
            yield row


def nearby_from_candidates(candidates: Iterable[dict], ra: float, dec: float,
                           radius_arcmin: float) -> list[dict]:
    """Exact-distance filter + nearest-first sort over HTM candidates.

    Shared by the single-node path below and the cluster's scatter
    (:meth:`repro.cluster.ClusterExecutor.cone_candidate_rows`), which
    gathers the candidate rows from the surviving shards instead.
    """
    rows = []
    for row in candidates:
        distance = arcmin_between(ra, dec, row["ra"], row["dec"])
        if distance <= radius_arcmin:
            rows.append({
                "objID": row["objid"],
                "distance": distance,
                "type": row["type"],
                "mode": row["mode"],
                "ra": row["ra"],
                "dec": row["dec"],
            })
    # objID tiebreaker: candidate order differs between the single-node
    # path (htmID-index order) and the cluster scatter (shard order), so
    # exact distance ties must not decide by input order.
    rows.sort(key=lambda entry: (entry["distance"], entry["objID"]))
    return rows


def rect_from_candidates(candidates: Iterable[dict],
                         region: "RectangleEq") -> list[dict]:
    """Exact-containment filter + (ra, dec) sort over HTM candidates."""
    rows = []
    for row in candidates:
        if region.contains_radec(row["ra"], row["dec"]):
            rows.append({
                "objID": row["objid"],
                "ra": row["ra"],
                "dec": row["dec"],
                "type": row["type"],
                "mode": row["mode"],
                "modelMag_r": row["modelmag_r"],
            })
    rows.sort(key=lambda entry: (entry["ra"], entry["dec"], entry["objID"]))
    return rows


def get_nearby_objects(database: Database, ra: float, dec: float,
                       radius_arcmin: float) -> list[dict]:
    """``fGetNearbyObjEq``: objID, distance (arcmin), type and mode of nearby objects."""
    candidates = _candidate_rows(database, cover_circle(ra, dec, radius_arcmin))
    return nearby_from_candidates(candidates, ra, dec, radius_arcmin)


def get_nearest_object(database: Database, ra: float, dec: float,
                       radius_arcmin: float = 1.0) -> list[dict]:
    """``fGetNearestObjEq``: at most one row — the closest object within the radius."""
    nearby = get_nearby_objects(database, ra, dec, radius_arcmin)
    return nearby[:1]


def get_objects_in_rect(database: Database, ra_min: float, dec_min: float,
                        ra_max: float, dec_max: float) -> list[dict]:
    """``fGetObjFromRectEq``: objects inside an (ra, dec) bounding box."""
    region = RectangleEq(ra_min, ra_max, dec_min, dec_max)
    candidates = _candidate_rows(database, cover(region, cover_depth=8))
    return rect_from_candidates(candidates, region)


def get_htm_id(ra: float, dec: float, depth: int = DEFAULT_DEPTH) -> int:
    """``fHTM_Lookup``: the HTM id of a position at the given depth."""
    return lookup_id(ra, dec, depth)


def register_spatial_functions(database: Database) -> None:
    """Register the spatial table-valued and scalar functions on a database."""
    database.register_table_function(
        "spHTM_Cover",
        [bigint("htmIDstart"), bigint("htmIDend")],
        lambda ra, dec, radius: htm_cover_circle(ra, dec, radius),
        description="HTM trixel ranges covering a circle (ra, dec, radius arcmin)",
        row_estimate=12, replace=True)
    database.register_table_function(
        "fGetNearbyObjEq",
        [bigint("objID"), floating("distance"), integer("type"), integer("mode"),
         floating("ra"), floating("dec")],
        lambda ra, dec, radius: get_nearby_objects(database, ra, dec, radius),
        description="Objects within radius arcminutes of (ra, dec), nearest first",
        row_estimate=20, replace=True)
    database.register_table_function(
        "fGetNearestObjEq",
        [bigint("objID"), floating("distance"), integer("type"), integer("mode"),
         floating("ra"), floating("dec")],
        lambda ra, dec, radius=1.0: get_nearest_object(database, ra, dec, radius),
        description="The single nearest object within radius arcminutes of (ra, dec)",
        row_estimate=1, replace=True)
    database.register_table_function(
        "fGetObjFromRectEq",
        [bigint("objID"), floating("ra"), floating("dec"), integer("type"),
         integer("mode"), floating("modelMag_r")],
        lambda ra_min, dec_min, ra_max, dec_max: get_objects_in_rect(
            database, ra_min, dec_min, ra_max, dec_max),
        description="Objects inside an (ra, dec) rectangle",
        row_estimate=100, replace=True)
    database.register_scalar_function(
        "fHTM_Lookup", get_htm_id,
        description="HTM id of an (ra, dec) position", replace=True)
    database.register_scalar_function(
        "fDistanceArcMinEq", arcmin_between,
        description="Arc distance in arcminutes between two (ra, dec) positions",
        replace=True)
