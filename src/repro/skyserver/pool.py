"""The concurrent serving pool: worker sessions, admission control and
a shared result cache.

The paper's SkyServer is not a single query loop — it is a public web
service absorbing millions of hits with hard per-user limits (§4, §7).
:class:`SkyServerPool` is that serving tier in library form:

* a fixed pool of **worker threads**, each owning one
  :class:`~repro.engine.Session` per service class (built by
  :func:`~repro.engine.make_session` for whichever backend the server
  fronts; sessions keep variables and a plan cache, so they are
  deliberately not shared across threads);
* **admission control** in front of the workers: every submission names
  a :class:`~repro.skyserver.limits.ServiceClass` (public / power /
  admin by default) with its own concurrency quota, queue depth and
  queue timeout.  A full queue rejects immediately — the web tier tells
  the user to retry rather than buffering unbounded work;
* a shared **result cache**: the public workload is dominated by the
  same template queries over and over (the paper's §7 traffic mix), so
  finished SELECT results are cached under their normalised SQL text
  and served without re-execution while still valid.  An entry is valid
  only while the catalog's ``schema_version`` and the *per-table
  modification counters* of every table the query read are unchanged —
  the same invalidation discipline as the session plan cache, extended
  to DML.  Identical cacheable queries in flight are **coalesced**
  (dogpile protection): one worker executes, the duplicates wait for
  its cache fill instead of burning more workers on the same answer;
* **snapshot reads**: a worker acquires the read locks of every table
  its query references (in one global order, via
  :func:`repro.engine.concurrency.read_locks`) for the duration of the
  execution, so VACUUM, bulk loads and storage conversions can run
  concurrently without ever being observed mid-flight.  The database
  epoch recorded under those locks identifies the snapshot the query
  saw.

Batches that depend on session state (``DECLARE``/``SET``/``@var``
references), perform DDL (``SELECT INTO``) or mutate statistics
(``ANALYZE``) execute normally but are never result-cached.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, replace as _dataclass_replace
from typing import Any, Optional

from ..engine import (FunctionRef, QueryResult, Session, contains_variables,
                      make_session, read_locks, referenced_tables)
from ..engine.catalog import Database
from ..engine.errors import CatalogError
from ..engine.sql import PlanCache, parse_batch
from ..engine.sql.ast import SelectStatement
from ..telemetry import LatencyHistogram, TRACER
from ..telemetry.trace import clip as _clip_sql
from .limits import ServiceClass, default_service_classes


class AdmissionRejected(RuntimeError):
    """A submission refused at the door (unknown class or full queue)."""

    def __init__(self, message: str, *, reason: str):
        super().__init__(message)
        self.reason = reason


class QueueTimeout(RuntimeError):
    """A submission that waited longer than its class's queue timeout."""


class PoolShutdown(RuntimeError):
    """The pool was shut down before the submission could run."""


class QueryTicket:
    """Handle for one submitted query; resolves to a :class:`QueryResult`."""

    __slots__ = ("sql", "user_class", "status", "submitted_at", "started_at",
                 "finished_at", "cache_hit", "epoch", "deadline",
                 "query_id", "plan_source", "_result", "_error", "_done")

    def __init__(self, sql: str, user_class: str):
        self.sql = sql
        self.user_class = user_class
        self.status = "queued"
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cache_hit = False
        #: Telemetry trace id, once a tracing worker picks the ticket up.
        self.query_id = 0
        #: How the executing session obtained its plan ("cache",
        #: "planned", "feedback", "fragment-cache", ...; "" if unknown).
        self.plan_source = ""
        #: Database epoch the execution observed under its read locks.
        self.epoch: Optional[int] = None
        self.deadline: Optional[float] = None
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None
        self._done = threading.Event()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until the query finishes; re-raises its failure, if any."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query did not finish within {timeout} seconds")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    @property
    def wait_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def _complete(self, result: QueryResult, *, status: str = "done",
                  cache_hit: bool = False) -> None:
        self._result = result
        self.cache_hit = cache_hit
        self.status = status
        self.finished_at = time.perf_counter()
        self._done.set()

    def _fail(self, error: BaseException, *, status: str = "failed") -> None:
        self._error = error
        self.status = status
        self.finished_at = time.perf_counter()
        self._done.set()


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

@dataclass
class CacheEntry:
    """One cached result and the versions it is valid against."""

    schema_version: int
    #: Lower-cased base-table name -> ``modification_counter`` at
    #: execution time, for every table the query read.
    table_versions: dict[str, int]
    result: QueryResult
    #: On a sharded server: lower-cased base-table name -> the tuple of
    #: *per-shard* modification counters the result was computed
    #: against.  DML on any one shard moves its counter and invalidates
    #: the entry — the coordinator's own counters cannot see shard-local
    #: writes, so without this vector a cluster result would be served
    #: stale.  ``None`` on single-node servers.
    cluster_versions: Optional[dict[str, tuple[int, ...]]] = None


def _copy_result(result: QueryResult) -> QueryResult:
    """A caller-owned copy: shared cache entries must never be mutated."""
    return QueryResult(
        columns=list(result.columns),
        rows=[dict(row) for row in result.rows],
        statistics=_dataclass_replace(result.statistics),
        plan=result.plan,
    )


class ResultCache:
    """Thread-safe LRU of finished query results.

    Keys are whitespace-normalised SQL (the plan cache's normalisation);
    validity is re-checked on every lookup against the catalog's schema
    version and the recorded per-table modification counters, so any
    DML, DDL or ANALYZE against a dependency invalidates the entry.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._mutex = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def lookup(self, key: str, database: Database, *,
               cluster=None,
               record_miss: bool = True) -> Optional[QueryResult]:
        """The cached result for ``key`` if still valid, else None.

        ``cluster`` is the server's :class:`~repro.cluster.ShardCluster`
        when sharded: entries are additionally validated against the
        per-shard modification counters they recorded.
        ``record_miss=False`` keeps a second probe for the same
        submission (the worker's pre-execution re-check) from counting
        one logical miss twice.
        """
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += record_miss
                return None
            if not self._valid(entry, database, cluster):
                del self._entries[key]
                self.invalidations += 1
                self.misses += record_miss
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            result = entry.result
        return _copy_result(result)

    @staticmethod
    def _valid(entry: CacheEntry, database: Database, cluster=None) -> bool:
        if entry.schema_version != database.schema_version:
            return False
        try:
            if not all(database.table(name).modification_counter == counter
                       for name, counter in entry.table_versions.items()):
                return False
        except CatalogError:
            return False
        if cluster is not None:
            if entry.cluster_versions is None:
                # Cached before the cluster attached: cannot prove freshness.
                return False
            try:
                return all(cluster.table_versions(name) == versions
                           for name, versions in entry.cluster_versions.items())
            except CatalogError:
                return False
        return True

    def put(self, key: str, entry: CacheEntry) -> None:
        entry = CacheEntry(entry.schema_version, dict(entry.table_versions),
                           _copy_result(entry.result),
                           cluster_versions=(dict(entry.cluster_versions)
                                             if entry.cluster_versions is not None
                                             else None))
        with self._mutex:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def statistics(self) -> dict[str, Any]:
        with self._mutex:
            size = len(self._entries)
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "size": size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate(), 4),
        }


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------

@dataclass
class _BatchInfo:
    """Memoised per-SQL metadata: which tables to lock, cacheability."""

    schema_version: int
    table_names: tuple[str, ...]     # lower-cased base tables
    cacheable: bool


class SkyServerPool:
    """A thread pool of worker sessions with admission control.

    ``server`` may be a :class:`~repro.skyserver.server.SkyServer` (the
    pool attaches itself, surfacing its counters through
    ``site_statistics()["serving"]``) or a bare
    :class:`~repro.engine.catalog.Database`.
    """

    def __init__(self, server: Any, *, workers: int = 8,
                 service_classes: Optional[dict[str, ServiceClass]] = None,
                 result_cache_size: int = 256, parallelism: int = 1):
        self.database: Database = getattr(server, "database", server)
        #: Morsel-parallel degree for each worker's sessions.  Clamped
        #: so ``workers × parallelism`` cannot exceed the shared worker
        #: pool's capacity — nested parallelism (a full serving pool of
        #: parallel queries) throttles at the door, and the pool's
        #: lease accounting degrades the remainder at run time.  The
        #: knob never affects cache keys or admission quotas: parallel
        #: and serial execution share a cache entry, and admission
        #: counts queries, not the workers inside one.
        if parallelism > 1:
            from ..engine.parallel import get_worker_pool

            capacity = get_worker_pool().capacity
            parallelism = min(parallelism, max(1, capacity // max(1, workers)))
        self.parallelism = max(1, parallelism)
        #: The server's shard cluster, when it is a cluster coordinator:
        #: worker sessions route through the distributed planner and
        #: cache entries record per-shard modification counters.
        self.cluster = getattr(server, "cluster", None)
        self.service_classes = dict(service_classes or default_service_classes())
        self.result_cache = ResultCache(result_cache_size)
        self._cond = threading.Condition()
        self._queue: "deque[QueryTicket]" = deque()
        self._running = {name: 0 for name in self.service_classes}
        self._queued = {name: 0 for name in self.service_classes}
        self._shutdown = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.queue_timeouts = 0
        self.queue_depth_peak = 0
        self._per_class: dict[str, dict[str, int]] = {
            name: {"submitted": 0, "completed": 0, "failed": 0,
                   "rejected": 0, "queue_timeouts": 0}
            for name in self.service_classes}
        #: Memoised per-SQL lock/cacheability metadata; bounded LRU so
        #: an endless stream of distinct ad-hoc queries cannot grow it
        #: without limit (the plan/result caches are bounded too).
        self._batch_info: "OrderedDict[str, _BatchInfo]" = OrderedDict()
        self._batch_info_capacity = 1024
        self._batch_info_lock = threading.Lock()
        #: Cacheable queries currently executing, for dogpile coalescing:
        #: cache key -> tickets parked on the leader's completion.  A
        #: parked follower consumes no worker thread.
        self._inflight: dict[str, list[QueryTicket]] = {}
        self._inflight_lock = threading.Lock()
        self.coalesced = 0
        #: The server's telemetry bundle when fronting a SkyServer (the
        #: query log + server-level latency); None over a bare Database.
        self.telemetry = getattr(server, "telemetry", None)
        #: Queue-wait and execution latency histograms, computed from
        #: the ticket timestamps every completion already records.
        self.queue_wait = LatencyHistogram("pool.queue_wait_seconds")
        self.execution_latency = LatencyHistogram("pool.execution_seconds")
        #: Tickets expired by the deadline watchdog while _cond was
        #: held; observed (histograms + query log) outside the lock —
        #: the log append takes a table write lock and must never be
        #: attempted while holding the pool condition.
        self._expired_pending: "deque[QueryTicket]" = deque()
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"skyserver-worker-{index}")
            for index in range(workers)]
        for thread in self._threads:
            thread.start()
        # One watchdog enforces queue deadlines even while every worker
        # is busy (no per-ticket timer threads).
        self._reaper: Optional[threading.Thread] = None
        if any(service.queue_timeout_seconds is not None
               for service in self.service_classes.values()):
            self._reaper = threading.Thread(target=self._reap_loop, daemon=True,
                                            name="skyserver-reaper")
            self._reaper.start()
        attach = getattr(server, "attach_pool", None)
        if callable(attach):
            attach(self)

    # -- submission --------------------------------------------------------

    def submit(self, sql: str, user_class: str = "public") -> QueryTicket:
        """Admit one query; returns a ticket resolving to its result.

        Raises :class:`AdmissionRejected` when the class is unknown or
        its queue is full.  A result-cache hit completes the ticket
        immediately, without consuming a worker.
        """
        service = self.service_classes.get(user_class)
        if service is None:
            with self._cond:
                self.rejected += 1
            raise AdmissionRejected(
                f"unknown service class {user_class!r} "
                f"(have {sorted(self.service_classes)})", reason="unknown-class")
        ticket = QueryTicket(sql, user_class)
        cached = self.result_cache.lookup(self._cache_key(sql, user_class),
                                          self.database, cluster=self.cluster)
        if cached is not None:
            with self._cond:
                self.submitted += 1
                self.completed += 1
                self._per_class[user_class]["submitted"] += 1
                self._per_class[user_class]["completed"] += 1
            ticket._complete(cached, cache_hit=True)
            self._observe_ticket(ticket)
            return ticket
        with self._cond:
            if self._shutdown:
                raise PoolShutdown("the serving pool has been shut down")
            if self._queued[user_class] >= service.max_queue_depth:
                self.rejected += 1
                self._per_class[user_class]["rejected"] += 1
                raise AdmissionRejected(
                    f"{user_class} queue is full "
                    f"({service.max_queue_depth} waiting)", reason="queue-full")
            if service.queue_timeout_seconds is not None:
                ticket.deadline = ticket.submitted_at + service.queue_timeout_seconds
            self.submitted += 1
            self._per_class[user_class]["submitted"] += 1
            self._queued[user_class] += 1
            self._queue.append(ticket)
            self.queue_depth_peak = max(self.queue_depth_peak, len(self._queue))
            # notify_all: both an idle worker and the deadline reaper
            # listen on this condition.
            self._cond.notify_all()
        return ticket

    def _reap_loop(self) -> None:
        """Watchdog: expire overdue queued tickets on schedule.

        Without it a deadline would only be noticed the next time a
        worker looks at the queue — potentially the full runtime of
        whatever long queries keep every worker busy.
        """
        while True:
            with self._cond:
                if self._shutdown:
                    return
                self._expire_overdue()
                if not self._expired_pending:
                    deadlines = [ticket.deadline for ticket in self._queue
                                 if ticket.deadline is not None]
                    if deadlines:
                        delay = max(0.0, min(deadlines) - time.perf_counter())
                        self._cond.wait(delay + 0.001)
                    else:
                        self._cond.wait()
            # Expired tickets are observed with _cond released (the
            # query-log append takes a table lock); loop back around to
            # recompute deadlines afterwards.
            self._drain_expired()

    def _expire_overdue(self) -> None:
        """Fail every queued ticket past its deadline; caller holds _cond."""
        now = time.perf_counter()
        keep: "deque[QueryTicket]" = deque()
        while self._queue:
            ticket = self._queue.popleft()
            if ticket.deadline is not None and now > ticket.deadline:
                self._queued[ticket.user_class] -= 1
                self.queue_timeouts += 1
                self._per_class[ticket.user_class]["queue_timeouts"] += 1
                service = self.service_classes[ticket.user_class]
                ticket._fail(QueueTimeout(
                    f"waited longer than the {ticket.user_class} queue timeout "
                    f"of {service.queue_timeout_seconds:g}s"), status="timeout")
                self._expired_pending.append(ticket)
            else:
                keep.append(ticket)
        self._queue.extend(keep)

    def execute(self, sql: str, user_class: str = "public", *,
                timeout: Optional[float] = None) -> QueryResult:
        """Submit and wait: the synchronous convenience path."""
        return self.submit(sql, user_class).result(timeout)

    # -- worker loop -------------------------------------------------------

    def _worker(self) -> None:
        sessions: dict[str, Session] = {}
        while True:
            with self._cond:
                ticket = self._pop_eligible()
                while ticket is None:
                    if self._shutdown:
                        return
                    self._cond.wait()
                    ticket = self._pop_eligible()
            self._drain_expired()
            try:
                self._run_ticket(ticket, sessions)
            finally:
                with self._cond:
                    self._running[ticket.user_class] -= 1
                    self._cond.notify_all()

    def _pop_eligible(self) -> Optional[QueryTicket]:
        """Next runnable ticket (expiring stale ones); caller holds _cond."""
        self._expire_overdue()
        survivors: list[QueryTicket] = []
        chosen: Optional[QueryTicket] = None
        while self._queue:
            ticket = self._queue.popleft()
            service = self.service_classes[ticket.user_class]
            if chosen is None and self._running[ticket.user_class] < service.max_concurrent:
                chosen = ticket
                self._queued[ticket.user_class] -= 1
                self._running[ticket.user_class] += 1
            else:
                survivors.append(ticket)
        self._queue.extend(survivors)
        return chosen

    def _run_ticket(self, ticket: QueryTicket, sessions: dict[str, Session]) -> None:
        """Telemetry shell around :meth:`_run_ticket_inner`.

        Opens the root ``query`` span (backdated to submission so it
        covers the queue wait), records the admission wait as a child
        span, and — whether tracing is on or not — feeds the latency
        histograms and the query log once the ticket resolves.  A
        coalesced ticket resolves later, on its leader's thread, and is
        observed there instead.
        """
        ticket.started_at = time.perf_counter()
        ticket.status = "running"
        tracer = TRACER
        if not tracer.enabled:
            self._run_ticket_inner(ticket, sessions)
            self._observe_ticket(ticket)
            return
        with tracer.span("query", started=ticket.submitted_at,
                         sql=_clip_sql(ticket.sql),
                         user_class=ticket.user_class, via="pool") as root:
            ticket.query_id = root.query_id
            tracer.record("pool.admission", started=ticket.submitted_at,
                          ended=ticket.started_at, parent=root,
                          queue_wait_ms=round(
                              (ticket.started_at - ticket.submitted_at)
                              * 1000.0, 3))
            self._run_ticket_inner(ticket, sessions)
            root.attributes["status"] = ticket.status
            root.attributes["cache_hit"] = ticket.cache_hit
        self._observe_ticket(ticket)

    def _run_ticket_inner(self, ticket: QueryTicket,
                          sessions: dict[str, Session]) -> None:
        key = self._cache_key(ticket.sql, ticket.user_class)
        # A duplicate submitted while its twin was still queued may be
        # servable by now; re-probe before paying for execution.
        tracer = TRACER
        if tracer.enabled:
            with tracer.span("result_cache") as span:
                cached = self.result_cache.lookup(key, self.database,
                                                  cluster=self.cluster,
                                                  record_miss=False)
                span.attributes["hit"] = cached is not None
        else:
            cached = self.result_cache.lookup(key, self.database,
                                              cluster=self.cluster,
                                              record_miss=False)
        if cached is not None:
            with self._cond:
                self.completed += 1
                self._per_class[ticket.user_class]["completed"] += 1
            ticket._complete(cached, cache_hit=True)
            return
        session = sessions.get(ticket.user_class)
        if session is None:
            limits = self.service_classes[ticket.user_class].limits
            session = make_session(self.database, cluster=self.cluster,
                                   row_limit=limits.max_rows,
                                   time_limit_seconds=limits.max_seconds,
                                   parallelism=self.parallelism)
            sessions[ticket.user_class] = session
        try:
            info = self._analyze_batch(ticket.sql, key)
        except Exception as error:
            self._finish_failed(ticket, error)
            return
        if not info.cacheable:
            self._execute(ticket, session, info, key)
            return
        # Dogpile coalescing: the first worker on a cacheable query
        # becomes its leader and executes; a duplicate is *parked* on
        # the leader's completion — the worker that picked it up returns
        # to the pool immediately instead of blocking on the same answer.
        with self._inflight_lock:
            followers = self._inflight.get(key)
            if followers is not None:
                followers.append(ticket)
                ticket.status = "coalesced"
                return
            self._inflight[key] = []
        try:
            self._execute(ticket, session, info, key)
        finally:
            with self._inflight_lock:
                followers = self._inflight.pop(key, [])
            self._resolve_followers(followers, key)

    def _resolve_followers(self, followers: list[QueryTicket], key: str) -> None:
        """Serve tickets parked behind a finished leader.

        On a successful leader the cache fill satisfies them all; if the
        leader failed (or the entry was invalidated immediately), the
        followers go back into the admission queue to execute on their
        own.
        """
        for ticket in followers:
            cached = self.result_cache.lookup(key, self.database,
                                              cluster=self.cluster,
                                              record_miss=False)
            if cached is not None:
                with self._cond:
                    self.coalesced += 1
                    self.completed += 1
                    self._per_class[ticket.user_class]["completed"] += 1
                ticket._complete(cached, cache_hit=True)
                self._observe_ticket(ticket)
                continue
            with self._cond:
                if self._shutdown:
                    shut_down = True
                else:
                    shut_down = False
                    ticket.status = "queued"
                    self._queued[ticket.user_class] += 1
                    self._queue.append(ticket)
                    self._cond.notify_all()
            if shut_down:
                ticket._fail(PoolShutdown("the serving pool was shut down"),
                             status="rejected")
                self._observe_ticket(ticket)

    def _execute(self, ticket: QueryTicket, session: Session,
                 info: "_BatchInfo", key: str) -> None:
        """Run the batch under its tables' read locks; fill the cache."""
        try:
            if self.cluster is not None:
                self._execute_clustered(ticket, session, info, key)
                return
            tables = [self.database.table(name) for name in info.table_names
                      if self.database.has_table(name)]
            with read_locks(tables):
                ticket.epoch = self.database.epoch
                result = session.query(ticket.sql)
                ticket.plan_source = getattr(session, "last_plan_source", "")
                versions = {table.name.lower(): table.modification_counter
                            for table in tables}
                schema_version = self.database.schema_version
            if info.cacheable:
                self.result_cache.put(
                    key, CacheEntry(schema_version, versions, result))
        except Exception as error:
            self._finish_failed(ticket, error)
            return
        with self._cond:
            self.completed += 1
            self._per_class[ticket.user_class]["completed"] += 1
        ticket._complete(result)

    def _execute_clustered(self, ticket: QueryTicket, session: Any,
                           info: "_BatchInfo", key: str) -> None:
        """The cluster-mode execution path (no coordinator-wide locks).

        The :class:`~repro.cluster.ClusterSession` takes the shard (or
        gathered-coordinator) read locks itself — the worker must NOT
        pre-acquire coordinator read locks, because a data-shipping
        fallback would then need the write lock to re-gather (a
        forbidden upgrade).  Freshness for the cache is established by
        snapshotting every referenced table's per-shard modification
        counters before and after: an entry is only filled when nothing
        moved underneath the execution.
        """
        cluster = self.cluster
        try:
            placed = [name for name in info.table_names
                      if cluster.placement(name) is not None]
            unplaced = [name for name in info.table_names
                        if cluster.placement(name) is None]
            before = {name: cluster.table_versions(name) for name in placed}
            ticket.epoch = self.database.epoch + cluster.epoch
            result = session.query(ticket.sql)
            ticket.plan_source = getattr(session, "last_plan_source", "")
            # Placed tables validate against the shard counters (the
            # coordinator's copy is just a gather cache whose counters
            # move on every re-materialisation); tables living only on
            # the coordinator (##results and friends) keep using its own
            # modification counters.
            versions = {name: self.database.table(name).modification_counter
                        for name in unplaced if self.database.has_table(name)}
            schema_version = self.database.schema_version
            after = {name: cluster.table_versions(name) for name in placed}
            if info.cacheable and before == after:
                self.result_cache.put(
                    key, CacheEntry(schema_version, versions, result,
                                    cluster_versions=after))
        except Exception as error:
            self._finish_failed(ticket, error)
            return
        with self._cond:
            self.completed += 1
            self._per_class[ticket.user_class]["completed"] += 1
        ticket._complete(result)

    def _finish_failed(self, ticket: QueryTicket, error: BaseException) -> None:
        with self._cond:
            self.failed += 1
            self._per_class[ticket.user_class]["failed"] += 1
        ticket._fail(error)

    # -- telemetry ---------------------------------------------------------

    def _observe_ticket(self, ticket: QueryTicket) -> None:
        """Feed a resolved ticket's timestamps to the latency histograms
        and the server's query log.  Never called with ``_cond`` held —
        the log append takes a table write lock.  A ticket that is not
        finished yet (a parked coalesced follower) is skipped; it is
        observed when its leader resolves it.
        """
        if ticket.finished_at is None:
            return
        if ticket.started_at is not None:
            self.queue_wait.observe(ticket.started_at - ticket.submitted_at)
            self.execution_latency.observe(
                ticket.finished_at - ticket.started_at)
        else:
            # Completed at the door (result-cache hit in submit): no
            # queue time, and the whole life of the ticket is "execution".
            self.queue_wait.observe(0.0)
            self.execution_latency.observe(
                ticket.finished_at - ticket.submitted_at)
        if self.telemetry is not None:
            self.telemetry.record_pool_query(
                ticket, plan_source=ticket.plan_source)

    def _drain_expired(self) -> None:
        """Observe tickets the watchdog expired while holding ``_cond``."""
        while True:
            try:
                ticket = self._expired_pending.popleft()
            except IndexError:
                return
            self._observe_ticket(ticket)

    # -- batch metadata ----------------------------------------------------

    @staticmethod
    def _cache_key(sql: str, user_class: str) -> str:
        """Normalised SQL, scoped per service class.

        Classes run under different row/time budgets: sharing one entry
        across classes would hand a public user a power/admin result
        that the public limits would have rejected.
        """
        return user_class + "\x00" + PlanCache.normalize(sql)

    def _analyze_batch(self, sql: str, key: str) -> _BatchInfo:
        """Which base tables the batch reads, and whether to cache it."""
        version = self.database.schema_version
        with self._batch_info_lock:
            info = self._batch_info.get(key)
            if info is not None and info.schema_version == version:
                self._batch_info.move_to_end(key)
                return info
        names: set[str] = set()
        cacheable = True
        uses_functions = False
        for statement in parse_batch(sql):
            if isinstance(statement, SelectStatement) and statement.query is not None:
                names |= referenced_tables(statement.query)
                if statement.query.into or contains_variables(statement.query):
                    cacheable = False
                if any(isinstance(relation, FunctionRef)
                       for relation in statement.query.all_relations()):
                    # Table-valued functions read tables we cannot see at
                    # the logical level: their results cannot be keyed to
                    # modification counters (so never cached), and the
                    # execution conservatively read-locks *every* table.
                    cacheable = False
                    uses_functions = True
            else:
                # DECLARE / SET / ANALYZE: session state or statistics
                # mutation — execute fine, but never serve across users.
                cacheable = False
        if uses_functions:
            resolved = {name.lower() for name in self.database.table_names()}
        else:
            resolved = set()
            for name in names:
                if self.database.has_view(name):
                    resolved.add(self.database.resolve_relation(name).table_name.lower())
                elif self.database.has_table(name):
                    resolved.add(self.database.table(name).name.lower())
        info = _BatchInfo(version, tuple(sorted(resolved)), cacheable)
        with self._batch_info_lock:
            self._batch_info[key] = info
            self._batch_info.move_to_end(key)
            while len(self._batch_info) > self._batch_info_capacity:
                self._batch_info.popitem(last=False)
        return info

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; queued-but-unstarted tickets fail."""
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            leftovers = list(self._queue)
            self._queue.clear()
            for ticket in leftovers:
                self._queued[ticket.user_class] -= 1
            self._cond.notify_all()
        for ticket in leftovers:
            ticket._fail(PoolShutdown("the serving pool was shut down"),
                         status="rejected")
            self._observe_ticket(ticket)
        self._drain_expired()
        if wait:
            for thread in self._threads:
                thread.join()
            if self._reaper is not None:
                self._reaper.join()

    def __enter__(self) -> "SkyServerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- introspection -----------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """The ``site_statistics()["serving"]["pool"]`` payload."""
        from ..engine.parallel import get_worker_pool

        with self._cond:
            return {
                "workers": len(self._threads),
                "parallelism": self.parallelism,
                "worker_pool": get_worker_pool().statistics(),
                "queue_depth": len(self._queue),
                "queue_depth_peak": self.queue_depth_peak,
                "running": dict(self._running),
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "queue_timeouts": self.queue_timeouts,
                "coalesced": self.coalesced,
                "latency": {
                    "queue_wait": self.queue_wait.snapshot(),
                    "execution": self.execution_latency.snapshot(),
                },
                "result_cache": self.result_cache.statistics(),
                "classes": {
                    name: {**counters,
                           "limits": self.service_classes[name].describe()}
                    for name, counters in self._per_class.items()},
                "epoch": self.database.epoch,
            }
