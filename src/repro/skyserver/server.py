"""The SkyServer facade: the paper's web site / query service in library form.

A :class:`SkyServer` wraps a loaded schema database and exposes what the
ASP pages and SkyServerQA expose: free-form SQL (with the public row and
time limits when asked for), the spatial search forms (cone and
rectangle), the object explorer (the "drill down to the whole record"
page of Figure 2), the famous-places gallery, the schema browser and the
20-query data-mining suite used by the evaluation benchmarks.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..engine import Database, QueryResult, Session, lock_tables, make_session
from ..engine.durable import DurabilityManager
from ..loader import load_release_database
from ..pipeline import PipelineOutput, SurveyConfig, SyntheticSurvey
from ..schema import register_schema_functions
from ..telemetry import Telemetry
from .config import ServerConfig, TelemetryConfig
from .formats import render
from .limits import QueryLimits
from .queries import (ADDITIONAL_SIMPLE_QUERIES, DATA_MINING_QUERIES,
                      DataMiningQuery, fill_placeholders, query_by_id)
from .spatial import (get_nearby_objects, get_objects_in_rect,
                      register_spatial_functions)
from .urls import register_url_functions, url_for_navigation, url_for_object


@dataclass
class QueryExecution:
    """Timing and results of one benchmark query run."""

    query: DataMiningQuery
    result: QueryResult
    elapsed_seconds: float
    cpu_seconds: float

    @property
    def query_id(self) -> str:
        return self.query.query_id

    @property
    def row_count(self) -> int:
        return len(self.result.rows)

    def plan_text(self) -> str:
        return self.result.plan.explain()


class SkyServer:
    """Public access point to one SkyServer database.

    With a :class:`~repro.cluster.ShardCluster` attached the server is a
    *cluster coordinator*: SQL routes through the distributed planner
    (scatter-gather for distributable shapes, data-shipping gather for
    the rest), the spatial search forms scatter to HTM-pruned shards,
    and ``site_statistics()["cluster"]`` reports shard, pruning and
    merge counters.  Results are identical to the single-node layout.
    """

    def __init__(self, database: Database, *,
                 limits: Optional[QueryLimits] = None,
                 site_name: str = "SkyServer (reproduction)",
                 cluster=None,
                 telemetry: Optional[TelemetryConfig] = None):
        self.database = database
        self.limits = limits or QueryLimits.private()
        self.site_name = site_name
        self.cluster = cluster
        register_spatial_functions(database)
        register_url_functions(database)
        #: Observability bundle (tracing + metrics + the durable query
        #: log), driven by the config's ``telemetry`` section.  Built
        #: before the session so the ``QueryLog`` table exists by the
        #: time anything plans against the catalog.
        telemetry_config = telemetry or TelemetryConfig()
        self.telemetry = Telemetry(
            database,
            tracing=telemetry_config.tracing,
            query_log=telemetry_config.query_log,
            slow_query_seconds=telemetry_config.slow_query_seconds,
            trace_capacity=telemetry_config.trace_capacity)
        self.session: Session = make_session(
            database, cluster=cluster, row_limit=self.limits.max_rows,
            time_limit_seconds=self.limits.max_seconds)
        #: The concurrent serving pool, once one is started/attached.
        self._pool = None
        #: The survey a ``create()``/``from_survey()`` server was loaded
        #: from (None for ``open()``ed or hand-built servers).
        self.survey_output: Optional[PipelineOutput] = None
        #: Data releases served so far (bumped by :meth:`load_release`).
        self.release_number = 1

    # -- construction helpers --------------------------------------------------

    @classmethod
    def create(cls, config: Optional[ServerConfig] = None, *,
               path: Optional[str | os.PathLike] = None) -> "SkyServer":
        """Stand up a server from one declarative :class:`ServerConfig`.

        Schema → pipeline → loader → server, steered by the config's
        sections: storage layout (row/columnar, durable at
        ``config.storage.path`` or the ``path`` override), cluster
        partitioning, planner statistics, and an optional serving pool.
        The generated survey is kept on ``server.survey_output``.
        """
        config = config or ServerConfig()
        output = SyntheticSurvey(config.survey or SurveyConfig()).run()
        database, report = load_release_database(
            output,
            columnar=config.storage.columnar,
            analyze=config.planner.analyze,
            shards=config.cluster.shards,
            partition=config.cluster.partition,
            build_neighbors=config.build_neighbors)
        server = cls(database, limits=config.limits,
                     site_name=config.site_name, cluster=report.cluster,
                     telemetry=config.telemetry)
        server.survey_output = output
        durable_path = path if path is not None else config.storage.path
        if durable_path is not None:
            server.make_durable(durable_path, fsync=config.storage.fsync)
        if config.pool.workers:
            server.start_pool(workers=config.pool.workers,
                              result_cache_size=config.pool.result_cache_size,
                              parallelism=config.planner.parallelism)
        return server

    @classmethod
    def open(cls, path: str | os.PathLike, *,
             limits: Optional[QueryLimits] = None,
             site_name: str = "SkyServer (reproduction)",
             fsync: bool = False,
             telemetry: Optional[TelemetryConfig] = None) -> "SkyServer":
        """Reopen a durable server from its on-disk directory.

        Restores the last checkpoint (a header parse plus lazy segment
        reads — no re-encode of the column stores) and replays the WAL
        tail, so the server resumes exactly at its last committed
        write.  A directory holding a cluster manifest reopens as the
        cluster's coordinator with every shard recovered the same way.
        Code-defined functions (flags, profiles, spatial, URLs) are
        re-registered — checkpoints never serialize callables.
        """
        root = os.fspath(path)
        cluster = None
        from ..cluster import ShardCluster

        if os.path.exists(os.path.join(root, ShardCluster.CLUSTER_MANIFEST)):
            cluster = ShardCluster.open_durable(root, fsync=fsync)
            database = cluster.coordinator
        else:
            database = DurabilityManager.open(root, fsync=fsync).database
        register_schema_functions(database)
        return cls(database, limits=limits, site_name=site_name,
                   cluster=cluster, telemetry=telemetry)

    @classmethod
    def from_survey(cls, config: Optional[SurveyConfig] = None, *,
                    limits: Optional[QueryLimits] = None,
                    build_neighbors: bool = True,
                    columnar: bool = False,
                    shards: int = 1,
                    partition: str = "hash") -> tuple["SkyServer", PipelineOutput]:
        """Deprecated alias for :meth:`create` (kwargs instead of
        :class:`ServerConfig`); returns the historical
        ``(server, output)`` tuple."""
        from .config import ClusterConfig, PlannerConfig, StorageConfig

        server = cls.create(ServerConfig(
            survey=config,
            storage=StorageConfig(columnar=columnar),
            cluster=ClusterConfig(shards=shards, partition=partition),
            planner=PlannerConfig(),
            limits=limits,
            build_neighbors=build_neighbors))
        return server, server.survey_output

    # -- durability lifecycle ----------------------------------------------------

    def make_durable(self, path: str | os.PathLike, *,
                     fsync: bool = False) -> "SkyServer":
        """Attach this server's data to an on-disk directory (checkpoint
        everything now; WAL-log every mutation from here on)."""
        if self.cluster is not None:
            self.cluster.make_durable(path, fsync=fsync)
        else:
            DurabilityManager.attach(self.database, path, fsync=fsync)
        return self

    @property
    def durable(self) -> bool:
        if self.cluster is not None:
            return self.cluster.durability is not None
        return self.database.durability is not None

    def checkpoint(self) -> Optional[dict[str, Any]]:
        """Force a full checkpoint (no-op when not durable)."""
        if self.cluster is not None:
            if self.cluster.durability is None:
                return None
            return self.cluster.checkpoint()
        return self.database.checkpoint()

    def checkpoint_if_due(self) -> bool:
        """Apply the periodic checkpoint policy (WAL tail too long or
        too old); cheap enough to call from serving loops."""
        due = False
        for manager in self._durability_managers():
            due = manager.maybe_checkpoint() or due
        return due

    def _durability_managers(self) -> list[DurabilityManager]:
        if self.cluster is not None:
            durability = self.cluster.durability
            if durability is None:
                return []
            return [durability["coordinator"], *durability["shards"]]
        manager = self.database.durability
        return [manager] if manager is not None else []

    def close(self) -> None:
        """Shut down the serving pool, checkpoint, and release the WAL.

        After ``close()`` the on-disk directory reopens replay-free via
        :meth:`open`.  Safe to call on a non-durable server (it only
        stops the pool) and idempotent.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self.cluster is not None:
            if self.cluster.durability is not None:
                self.cluster.checkpoint()
                self.cluster.close_durable()
        else:
            manager = self.database.durability
            if manager is not None:
                manager.checkpoint()
                manager.close()

    def __enter__(self) -> "SkyServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- data releases -----------------------------------------------------------

    def load_release(self, output: PipelineOutput, *,
                     build_neighbors: bool = True) -> dict[str, Any]:
        """Ingest a new data release and atomically switch serving to it.

        The DR1→DR2 story: the incoming release loads into a *fresh*
        set of tables (same schema, same layout and partitioning as the
        serving set) while queries keep flowing against the old data —
        the load takes no locks the serving path uses.  The flip itself
        swaps each serving table's storage, indexes and statistics
        under one exclusive lock section: queries admitted before the
        flip finish on the old segments they hold, queries admitted
        after see DR2, and none fail.  Modification counters strictly
        increase across the flip and the schema version bumps, so every
        cached plan and cached result is invalidated, and a durable
        server checkpoints the new release before returning.
        """
        fresh_db, report = load_release_database(
            output, columnar=self._columnar_layout(),
            shards=(self.cluster.shard_count
                    if self.cluster is not None else 1),
            partition=(self.cluster.scheme
                       if self.cluster is not None else "hash"),
            build_neighbors=build_neighbors)
        if self.cluster is not None:
            self._flip_cluster(report.cluster)
        else:
            self._flip_database(fresh_db)
        self.release_number += 1
        self.survey_output = output
        rows = {entry["table"]: entry["records"]
                for entry in (self.cluster.size_report()
                              if self.cluster is not None
                              else self.database.size_report())}
        return {"release": self.release_number, "rows": rows,
                "rows_loaded": report.rows_loaded,
                "checkpointed": self.durable}

    def _columnar_layout(self) -> bool:
        """Whether the serving PhotoObj lives in a column store (the
        incoming release is loaded into the same layout)."""
        if self.cluster is not None:
            return (self.cluster.shards[0].table("PhotoObj").storage.kind
                    == "column")
        return self.database.table("PhotoObj").storage.kind == "column"

    def _flip_database(self, fresh: Database) -> None:
        """Swap every serving table's contents for the fresh release's,
        in place, under exclusive locks (single-node path)."""
        tables = [self.database.table(name)
                  for name in self.database.table_names()]
        manager = self.database.durability
        with lock_tables([(table, "write") for table in tables]):
            for old in tables:
                # Serving-only tables (##temp results, scratch) have no
                # counterpart in the release; they survive the flip.
                if fresh.has_table(old.name):
                    self._swap_table_contents(old, fresh.table(old.name))
            self.database.statistics.clear()
            self.database.statistics.update(fresh.statistics)
            self.database.bump_schema_version()
        if manager is not None:
            manager.checkpoint()

    def _flip_cluster(self, fresh) -> None:
        """Swap the cluster's shards, placements and coordinator copies
        for the fresh release's.  The outgoing release's WAL handles are
        released first and the incoming release re-checkpoints into the
        same directory afterwards (fresh durable segments; the manifest
        rename is the commit point, so a crash mid-flip recovers the
        old release)."""
        cluster = self.cluster
        durable_path = None
        fsync = False
        if cluster.durability is not None:
            durable_path = cluster.durability["path"]
            fsync = cluster.durability["coordinator"].fsync
            cluster.close_durable()
        coordinator_tables = [self.database.table(name)
                              for name in self.database.table_names()]
        with cluster._dml_lock, cluster._gather_lock:
            with lock_tables([(table, "write")
                              for table in coordinator_tables]):
                for old in coordinator_tables:
                    if fresh.coordinator.has_table(old.name):
                        self._swap_table_contents(
                            old, fresh.coordinator.table(old.name))
                self.database.statistics.clear()
                self.database.statistics.update(fresh.coordinator.statistics)
                for node, fresh_node in zip(cluster.shards, fresh.shards):
                    node.database = fresh_node.database
                    node._sequences = fresh_node._sequences
                cluster.placements.clear()
                cluster.placements.update(fresh.placements)
                cluster.table_row_bytes = dict(fresh.table_row_bytes)
                cluster._next_sequence = dict(fresh._next_sequence)
                cluster._gathered.clear()
                cluster.gather_invalidations += 1
                self.database.bump_schema_version()
        if durable_path is not None:
            cluster.make_durable(durable_path, fsync=fsync)

    @staticmethod
    def _swap_table_contents(old, new) -> None:
        """Repoint one serving table at the fresh release's data.  The
        table *object* (and its lock) stays — sessions, the pool and
        the cluster hold references to it — only the guts move."""
        old.storage = new.storage
        old._data_bytes = new._data_bytes
        for index in new.indexes.values():
            index.table = old
        old.indexes = new.indexes
        # Strictly above the old counter, whatever either side saw:
        # cached results and gathers validate against it.
        old.modification_counter += new.modification_counter + 1

    # -- free-form SQL -----------------------------------------------------------

    def query(self, sql: str) -> QueryResult:
        """Run a SQL batch and return the final SELECT's result.

        Every statement served here is traced (when tracing is on) and
        appended to the durable ``QueryLog`` table — the paper's query
        log, self-hosted.
        """
        return self.telemetry.run_query(
            lambda: self.session.query(sql), sql, session=self.session)

    def submit(self, sql: str, output_format: str = "csv") -> str | bytes:
        """Run a query and render it in one of the public output formats."""
        return render(self.query(sql), output_format)

    def explain(self, sql: str) -> str:
        """The query plan, as the engine's EXPLAIN rendering."""
        return self.session.explain(sql)

    def plan_cache_statistics(self) -> dict[str, int]:
        """Hit/miss/invalidation counters of the session's plan cache."""
        return self.session.plan_cache.statistics()

    # -- concurrent serving ------------------------------------------------------

    def start_pool(self, *, workers: int = 8, service_classes=None,
                   result_cache_size: int = 256, parallelism: int = 1):
        """Start (and attach) a concurrent serving pool over this database.

        Returns the :class:`~repro.skyserver.pool.SkyServerPool`; its
        admission/queue/cache/lock counters appear in
        ``site_statistics()["serving"]`` from then on.  A previously
        attached pool is shut down first.  ``parallelism`` enables
        morsel-parallel execution inside each worker's sessions (clamped
        so workers x parallelism never oversubscribes the shared engine
        worker pool; cache keys and admission quotas are unaffected).
        """
        from .pool import SkyServerPool

        if self._pool is not None:
            self._pool.shutdown()
        return SkyServerPool(self, workers=workers,
                             service_classes=service_classes,
                             result_cache_size=result_cache_size,
                             parallelism=parallelism)

    def attach_pool(self, pool) -> None:
        """Register ``pool`` as this server's serving pool (pool calls this)."""
        self._pool = pool

    @property
    def pool(self):
        return self._pool

    def serving_statistics(self) -> dict[str, Any]:
        """Pool/queue/cache counters plus table-lock contention and epoch."""
        return {
            "pool": self._pool.statistics() if self._pool is not None else None,
            "locks": self.database.concurrency_statistics(),
        }

    # -- the data-mining suite ----------------------------------------------------

    def run_data_mining_query(self, query_id: str) -> QueryExecution:
        """Run one of the 20 benchmark queries (or an SX extra) by id."""
        query = query_by_id(query_id)
        sql = self._resolve_placeholders(query)
        started_wall = time.perf_counter()
        started_cpu = time.process_time()
        result = self.query(sql)
        return QueryExecution(
            query=query,
            result=result,
            elapsed_seconds=time.perf_counter() - started_wall,
            cpu_seconds=time.process_time() - started_cpu,
        )

    def run_all_data_mining_queries(self, query_ids: Optional[Sequence[str]] = None, *,
                                    include_additional: bool = False) -> list[QueryExecution]:
        """Run the whole suite (Figure 13's measurement loop)."""
        if query_ids is None:
            queries = list(DATA_MINING_QUERIES)
            if include_additional:
                queries += ADDITIONAL_SIMPLE_QUERIES
            query_ids = [query.query_id for query in queries]
        return [self.run_data_mining_query(query_id) for query_id in query_ids]

    def _resolve_placeholders(self, query: DataMiningQuery) -> str:
        objid = None
        specobjid = None
        if "{objid}" in query.sql:
            row = self._first_row("PhotoObj")
            objid = row["objid"] if row is not None else None
        if "{specobjid}" in query.sql:
            row = self._first_row("SpecObj")
            specobjid = row["specobjid"] if row is not None else None
        return fill_placeholders(query, objid=objid, specobjid=specobjid)

    def _first_row(self, table_name: str) -> Optional[dict]:
        """The first loaded row of a table (the cluster's sequence 0)."""
        if self.cluster is not None:
            return self.cluster.first_row(table_name)
        for _row_id, row in self.database.table(table_name).iter_rows():
            return row
        return None

    # -- the point-and-click interfaces ---------------------------------------------

    def cone_search(self, ra: float, dec: float, radius_arcmin: float) -> list[dict]:
        """The radial search form: objects within a radius, nearest first.

        On a sharded server the HTM cover prunes the scatter to the
        shards whose trixel/declination ranges the cone touches; each
        surviving shard answers through its own htmID index.
        """
        if self.cluster is not None:
            from ..htm import cover_circle
            from .spatial import nearby_from_candidates

            candidates = self.cluster.executor.cone_candidate_rows(
                cover_circle(ra, dec, radius_arcmin))
            return nearby_from_candidates(candidates, ra, dec, radius_arcmin)
        return get_nearby_objects(self.database, ra, dec, radius_arcmin)

    def rectangle_search(self, ra_min: float, dec_min: float,
                         ra_max: float, dec_max: float) -> list[dict]:
        """The rectangular search form (shard-pruned when clustered)."""
        if self.cluster is not None:
            from ..htm import RectangleEq, cover
            from .spatial import rect_from_candidates

            region = RectangleEq(ra_min, ra_max, dec_min, dec_max)
            candidates = self.cluster.executor.cone_candidate_rows(
                cover(region, cover_depth=8))
            return rect_from_candidates(candidates, region)
        return get_objects_in_rect(self.database, ra_min, dec_min, ra_max, dec_max)

    def explore_object(self, obj_id: int) -> dict[str, Any]:
        """The Object Explorer page: the whole record plus everything linked to it."""
        if self.cluster is not None:
            from ..engine.concurrency import read_locks

            # The explorer reads point lookups across the whole snowflake;
            # gather the (cached) coordinator copies once, then hold their
            # read locks so a concurrent re-gather (truncate + refill)
            # cannot be observed between the lookups below.
            names = ["PhotoObj", "Neighbors", "SpecObj", "SpecLine",
                     "USNO", "ROSAT", "FIRST"]
            self.cluster.ensure_local(names)
            tables = [self.database.table(name) for name in names
                      if self.database.has_table(name)]
            with read_locks(tables):
                return self._explore_object_locked(obj_id)
        return self._explore_object_locked(obj_id)

    def _explore_object_locked(self, obj_id: int) -> dict[str, Any]:
        photo = self.database.table("PhotoObj")
        record: Optional[dict] = None
        index = photo.find_index_on(["objID"])
        if index is not None:
            for row_id in index.seek((obj_id,)):
                record = photo.get_row(row_id)
                break
        if record is None:
            for _row_id, row in photo.iter_rows():
                if row["objid"] == obj_id:
                    record = row
                    break
        if record is None:
            raise KeyError(f"no PhotoObj with objID {obj_id}")
        neighbors = [row for _rid, row in self.database.table("Neighbors").iter_rows()
                     if row["objid"] == obj_id] if self.database.has_table("Neighbors") else []
        spectrum = None
        lines: list[dict] = []
        if record["specobjid"]:
            spec = self.database.table("SpecObj")
            for _row_id, row in spec.iter_rows():
                if row["specobjid"] == record["specobjid"]:
                    spectrum = row
                    break
            line_table = self.database.table("SpecLine")
            line_index = line_table.find_index_on(["specObjID"])
            if line_index is not None:
                lines = [line_table.get_row(rid) for rid in line_index.seek((record["specobjid"],))]
            else:
                lines = [row for _rid, row in line_table.iter_rows()
                         if row["specobjid"] == record["specobjid"]]
        crossmatches = {}
        for survey in ("USNO", "ROSAT", "FIRST"):
            matches = [row for _rid, row in self.database.table(survey).iter_rows()
                       if row["objid"] == obj_id]
            if matches:
                crossmatches[survey] = matches[0]
        return {
            "photo": record,
            "neighbors": neighbors,
            "spectrum": spectrum,
            "spectral_lines": [line for line in lines if line is not None],
            "crossmatches": crossmatches,
            "explorer_url": url_for_object(obj_id),
            "navigation_url": url_for_navigation(record["ra"], record["dec"]),
        }

    def famous_places(self, count: int = 10) -> list[dict]:
        """The 'coffee-table atlas': the most photogenic (brightest large) galaxies."""
        result = self.query(f"""
            select top {int(count)} objID, ra, dec, modelMag_r, petroRad_r,
                   dbo.fGetUrlExpId(objID) as url
            from Galaxy
            where petroRad_r > 2
            order by modelMag_r
        """)
        return result.rows

    # -- metadata -------------------------------------------------------------------

    def schema_browser(self) -> dict[str, Any]:
        """The SkyServerQA object-browser tree (tables, views, functions, indexes)."""
        return self.database.describe()

    def storage_statistics(self) -> dict[str, Any]:
        """The segment/compression report behind ``site_statistics()["storage"]``.

        Per-table encoded vs. logical bytes and compression ratio from
        the column stores' sealed segments (summed across the shards
        when clustered), plus how many segments this server's queries
        actually scanned vs. let the zone maps skip.
        """
        databases = ([node.database for node in self.cluster.shards]
                     if self.cluster is not None else [self.database])
        tables: dict[str, dict[str, Any]] = {}
        for database in databases:
            for name in database.table_names():
                table = database.table(name)
                report = getattr(table.storage, "storage_statistics", None)
                if report is None:
                    continue
                stats = report()
                entry = tables.get(table.name)
                if entry is None:
                    tables[table.name] = dict(stats)
                    continue
                for key in ("segments", "segments_sealed", "sealed_rows",
                            "tail_rows", "encoded_bytes", "logical_bytes"):
                    entry[key] += stats[key]
                for encoding, count in stats["encodings"].items():
                    entry["encodings"][encoding] = (
                        entry["encodings"].get(encoding, 0) + count)
                entry["compression_ratio"] = (
                    entry["logical_bytes"] / entry["encoded_bytes"]
                    if entry["encoded_bytes"] else 1.0)
        encoded = sum(entry["encoded_bytes"] for entry in tables.values())
        logical = sum(entry["logical_bytes"] for entry in tables.values())
        modes = self.session.execution_mode_statistics()
        return {
            "tables": tables,
            "encoded_bytes": encoded,
            "logical_bytes": logical,
            "compression_ratio": (logical / encoded) if encoded else 1.0,
            "segments_scanned": modes.get("segments_scanned", 0),
            "segments_skipped": modes.get("segments_skipped", 0),
            "durability": self.durability_statistics(),
        }

    def durability_statistics(self) -> Optional[dict[str, Any]]:
        """On-disk bytes, WAL size and checkpoint freshness (None when
        the server is memory-only).  Summed across the coordinator and
        every shard for a durable cluster."""
        managers = self._durability_managers()
        if not managers:
            return None
        reports = [manager.statistics() for manager in managers]
        return {
            "path": (self.cluster.durability["path"]
                     if self.cluster is not None else reports[0]["path"]),
            "on_disk_bytes": sum(r["on_disk_bytes"] for r in reports),
            "wal_bytes": sum(r["wal_bytes"] for r in reports),
            "wal_records_since_checkpoint": sum(
                r["wal_records_since_checkpoint"] for r in reports),
            "checkpoints_written": sum(r["checkpoints_written"]
                                       for r in reports),
            "last_checkpoint_age_seconds": max(
                (r["last_checkpoint_age_seconds"] for r in reports
                 if r["last_checkpoint_age_seconds"] is not None),
                default=None),
            "fsync": any(r["fsync"] for r in reports),
        }

    def site_statistics(self) -> dict[str, Any]:
        """Row counts, sizes and execution counters: the 'about the data' page."""
        if self.cluster is not None:
            tables = self.cluster.size_report()
            total_bytes = sum(entry["total_bytes"] for entry in tables)
        else:
            tables = self.database.size_report()
            total_bytes = self.database.total_bytes()
        return {
            "site": self.site_name,
            "limits": self.limits.describe(),
            "tables": tables,
            "total_bytes": total_bytes,
            "plan_cache": self.plan_cache_statistics(),
            "execution_modes": self.session.execution_mode_statistics(),
            "optimizer": {
                "plans": self.session.optimizer_statistics(),
                "statistics_freshness": self.database.statistics_freshness(),
            },
            "serving": self.serving_statistics(),
            "storage": self.storage_statistics(),
            "cluster": (self.cluster.statistics()
                        if self.cluster is not None else None),
        }

    # -- telemetry ------------------------------------------------------------------

    def telemetry_report(self) -> dict[str, Any]:
        """One structured snapshot unifying the scattered statistics.

        The ``telemetry`` section carries the server-level latency
        histogram (p50/p95/p99), tracer and metrics-registry snapshots,
        query-log counters and the recent slow queries; ``pool`` adds
        the serving pool's queue-wait/execution percentiles; ``site``
        embeds the familiar ``site_statistics()`` payload; ``traffic``
        is the Figure-5-style analysis of our own query log.
        """
        report: dict[str, Any] = {
            "telemetry": self.telemetry.snapshot(),
            "pool": (self._pool.statistics()
                     if self._pool is not None else None),
            "site": self.site_statistics(),
        }
        traffic = self.traffic_report()
        report["traffic"] = (traffic.summary_rows()
                             if traffic is not None else None)
        return report

    def query_log_rows(self, *, limit: Optional[int] = None) -> list[dict]:
        """The ``QueryLog`` table's rows, read back through plain SQL
        (dogfooding: the log is data, exactly as the paper used it)."""
        if self.telemetry.logger is None:
            return []
        sql = "select * from QueryLog order by logID"
        rows = self.query(sql).rows
        return rows[-limit:] if limit is not None else rows

    def traffic_report(self):
        """Figure-5-style analysis over our own query log (or ``None``
        when the query log is disabled or still empty)."""
        from ..traffic import analyze_query_log

        rows = self.query_log_rows()
        if not rows:
            return None
        return analyze_query_log(rows)
