"""The Personal SkyServer (paper §10).

"A 1% subset of the SkyServer database (about .5 GB SQL Server
database) can fit on a CD or be downloaded over the web.  This includes
the web site and all the photo and spectrographic objects in a 6°
square of the sky.  This personal SkyServer fits on laptops and
desktops."

``extract_personal_skyserver`` carves the same kind of subset out of a
loaded database: every photo object inside a square patch of sky, plus
everything reachable from those objects through the snowflake foreign
keys (fields, frames, profiles, neighbours, cross-matches, spectra and
their lines/redshifts and plates), into a brand-new database with the
full schema, views, functions and indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..engine import Database
from ..schema import create_skyserver_database
from ..schema.build import table_load_order


def _resolve_source(source: Union[Database, "SkyServer"]) -> Database:
    """The database to read from: a server's coordinator (with every
    sharded table gathered local first) or the database as given."""
    if isinstance(source, Database):
        return source
    cluster = getattr(source, "cluster", None)
    if cluster is not None:
        cluster.ensure_local([name for name in table_load_order()
                              if source.database.has_table(name)])
    return source.database


@dataclass
class PersonalExtractSummary:
    """What ended up in the personal database."""

    center_ra: float
    center_dec: float
    size_degrees: float
    row_counts: dict[str, int]
    source_row_counts: dict[str, int]
    bytes_total: int

    def subset_fraction(self, table: str = "PhotoObj") -> float:
        source = self.source_row_counts.get(table, 0)
        if not source:
            return 0.0
        return self.row_counts.get(table, 0) / source


def extract_personal_skyserver(source: Union[Database, "SkyServer"], *,
                               center_ra: float, center_dec: float,
                               size_degrees: float = 0.25,
                               name: str = "PersonalSkyServer",
                               with_indices: bool = True
                               ) -> tuple[Database, PersonalExtractSummary]:
    """Extract the square patch ``size_degrees`` on a side around the centre.

    The real Personal SkyServer is a 6-degree square of an 80 GB
    database (≈1%); at reproduction scale the survey footprint is much
    smaller, so the default patch is 0.25 degrees — the caller chooses
    the size that yields the subset fraction they want.

    ``source`` may be an engine :class:`Database` or a whole
    :class:`~repro.skyserver.server.SkyServer`; a sharded server's
    tables are gathered to its coordinator first so the extract reads
    every shard's rows.
    """
    source = _resolve_source(source)
    half = size_degrees / 2.0
    ra_min, ra_max = center_ra - half, center_ra + half
    dec_min, dec_max = center_dec - half, center_dec + half

    personal = create_skyserver_database(name, with_indices=False)

    photo = source.table("PhotoObj")
    selected_objects: set[int] = set()
    selected_fields: set[int] = set()
    photo_rows = []
    for _row_id, row in photo.iter_rows():
        if ra_min <= row["ra"] <= ra_max and dec_min <= row["dec"] <= dec_max:
            photo_rows.append(row)
            selected_objects.add(row["objid"])
            selected_fields.add(row["fieldid"])

    selected_spectra: set[int] = set()
    spec_rows = []
    selected_plates: set[int] = set()
    if source.has_table("SpecObj"):
        for _row_id, row in source.table("SpecObj").iter_rows():
            if row["objid"] in selected_objects or (
                    ra_min <= row["ra"] <= ra_max and dec_min <= row["dec"] <= dec_max):
                spec_rows.append(row)
                selected_spectra.add(row["specobjid"])
                selected_plates.add(row["plateid"])

    def copy_table(table_name: str, predicate) -> int:
        if not source.has_table(table_name) or not personal.has_table(table_name):
            return 0
        source_table = source.table(table_name)
        target_table = personal.table(table_name)
        rows = [dict(row) for _rid, row in source_table.iter_rows() if predicate(row)]
        # Preserve the original load timestamps rather than stamping extraction time.
        target_table.insert_many(rows, database=personal, skip_fk=True)
        return len(rows)

    copied: dict[str, int] = {}
    copied["Field"] = copy_table("Field", lambda row: row["fieldid"] in selected_fields)
    copied["Frame"] = copy_table("Frame", lambda row: row["fieldid"] in selected_fields)
    copied["PhotoObj"] = copy_table("PhotoObj", lambda row: row["objid"] in selected_objects)
    copied["Profile"] = copy_table("Profile", lambda row: row["objid"] in selected_objects)
    copied["Neighbors"] = copy_table(
        "Neighbors", lambda row: row["objid"] in selected_objects
        and row["neighborobjid"] in selected_objects)
    for survey in ("USNO", "ROSAT", "FIRST"):
        copied[survey] = copy_table(survey, lambda row: row["objid"] in selected_objects)
    copied["Plate"] = copy_table("Plate", lambda row: row["plateid"] in selected_plates)
    copied["SpecObj"] = copy_table("SpecObj", lambda row: row["specobjid"] in selected_spectra)
    for table_name in ("SpecLine", "SpecLineIndex", "xcRedShift", "elRedShift"):
        copied[table_name] = copy_table(
            table_name, lambda row: row["specobjid"] in selected_spectra)

    if with_indices:
        from ..schema.indices import create_indices

        create_indices(personal)

    source_counts = {name: source.table(name).row_count for name in table_load_order()
                     if source.has_table(name)}
    summary = PersonalExtractSummary(
        center_ra=center_ra, center_dec=center_dec, size_degrees=size_degrees,
        row_counts=copied, source_row_counts=source_counts,
        bytes_total=personal.total_bytes())
    return personal, summary
