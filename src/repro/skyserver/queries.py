"""The 20 astronomy data-mining queries (paper §3 and §11).

"We [Szalay] defined 20 typical queries and designed the SkyServer
database to answer those queries ... We were surprised and pleased to
discover that all 20 queries have fairly simple SQL equivalents."

Queries 1, 15A and 15B appear verbatim in the paper and are reproduced
verbatim (modulo the arcminute-scale sizes of the synthetic survey's
streaks).  The other seventeen are *reconstructions*: the companion
technical report that lists them is not part of the supplied text, so
each is rebuilt from the descriptions this paper gives — index lookups,
"complex colour cut" table scans (the paper names queries 5, 14, 19 and
20 as examples), joins with the spectroscopic snowflake, and spatial
joins through the Neighbors table.  Each query records its category so
Figure 13's banding (index lookups ≪ scans ≪ joins) can be checked.
The five "SX" queries stand in for the 15 additional, simpler queries
posed by astronomers that §11 mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

#: Query categories, ordered roughly by expected cost.
CATEGORY_INDEX_LOOKUP = "index lookup"
CATEGORY_SPATIAL = "spatial"
CATEGORY_SCAN = "sequential scan"
CATEGORY_JOIN = "join"
CATEGORY_AGGREGATE = "aggregate scan"


@dataclass(frozen=True)
class DataMiningQuery:
    """One of the benchmark queries: id, intent, category and SQL text."""

    query_id: str
    title: str
    category: str
    sql: str
    verbatim: bool = False
    description: str = ""


# The saturated-flag value is bound through a variable exactly as in the paper.
QUERY_1_SQL = """
declare @saturated bigint;
set    @saturated = dbo.fPhotoFlags('saturated');
select G.objID, GN.distance
into  ##results
from  Galaxy                       as G
join fGetNearbyObjEq(185,-0.5, 1) as GN
                  on G.objID = GN.objID
where   (G.flags & @saturated) = 0
order by distance
"""

QUERY_15A_SQL = """
select objID,
       sqrt(rowv*rowv+colv*colv) as velocity,
       dbo.fGetUrlExpId(objID)   as Url
into  ##results
from PhotoObj
where (rowv*rowv+colv*colv) between 50 and 1000
and rowv >= 0 and colv >=0
"""

# The fast-moving (NEO) pair query.  The isoA thresholds are in the synthetic
# survey's arcsecond units (the paper's pixel-unit thresholds scaled); the
# structure — covering-index scans of red and green candidates, nested-loop
# joined on run/camcol/adjacent field, ellipticity and magnitude matching —
# is the paper's verbatim query.
QUERY_15B_SQL = """
select r.objID as rId, g.objId as gId,
       dbo.fGetUrlExpId(r.objID) as rURL,
       dbo.fGetUrlExpId(g.objID) as gURL
from   PhotoObj r, PhotoObj g
where  r.run = g.run and r.camcol=g.camcol
  and abs(g.field-r.field) <= 1
  and ((power(r.q_r,2) + power(r.u_r,2)) >
                0.111111 ) -- q/u is ellipticity
  -- the red selection criteria
  and r.fiberMag_r between 6 and 22
  and r.fiberMag_r < r.fiberMag_u
  and r.fiberMag_r < r.fiberMag_g
  and r.fiberMag_r < r.fiberMag_i
  and r.fiberMag_r < r.fiberMag_z
  and r.parentID=0
  and r.isoA_r/r.isoB_r > 1.5
  and r.isoA_r > 2.0
  -- the green selection criteria
  and ((power(g.q_g,2) + power(g.u_g,2)) >
                 0.111111 ) -- q/u is ellipticity
  and g.fiberMag_g between 6 and 22
  and g.fiberMag_g < g.fiberMag_u
  and g.fiberMag_g < g.fiberMag_r
  and g.fiberMag_g < g.fiberMag_i
  and g.fiberMag_g < g.fiberMag_z
  and g.parentID=0
  and g.isoA_g/g.isoB_g > 1.5
  and g.isoA_g > 2.0
-- the match-up of the pair
--(note acos(x) ~ x for x~1)
  and sqrt(power(r.cx-g.cx,2)
     +power(r.cy-g.cy,2) +power(r.cz-g.cz,2))*
          (180*60/pi()) < 4.0
  and abs(r.fiberMag_r-g.fiberMag_g)< 2.0
"""


DATA_MINING_QUERIES: list[DataMiningQuery] = [
    DataMiningQuery(
        "Q1", "Galaxies without saturated pixels within 1' of a given point",
        CATEGORY_SPATIAL, QUERY_1_SQL, verbatim=True,
        description="The paper's worked example: the Galaxy view joined against the "
                    "spatial table-valued function, excluding saturated objects "
                    "(Figure 10; 19 galaxies in 0.19 s on the paper's hardware)."),
    DataMiningQuery(
        "Q2", "Galaxies with blue surface brightness between 23 and 25 mag per square arcsecond",
        CATEGORY_SCAN, """
select objID, modelMag_g,
       modelMag_g + 2.5*log10(2*3.1415927*petroR50_g*petroR50_g + 0.0001) as surfaceBrightness
from Galaxy
where modelMag_g + 2.5*log10(2*3.1415927*petroR50_g*petroR50_g + 0.0001) between 23 and 25
  and dec < 0
""",
        description="Surface-brightness selection: a sequential scan with an arithmetic predicate."),
    DataMiningQuery(
        "Q3", "Galaxies brighter than magnitude 22 where the local extinction is more than 0.175",
        CATEGORY_SCAN, """
select objID, modelMag_r, extinction_r
from Galaxy
where modelMag_r < 22 and extinction_r > 0.175
""",
        description="Extinction-selected galaxies; covered by the type/magnitude index."),
    DataMiningQuery(
        "Q4", "Galaxies with a large isophotal major axis and significant ellipticity",
        CATEGORY_SCAN, """
select objID, isoA_r, isoB_r, isoA_r/isoB_r as axisRatio
from Galaxy
where isoA_r between 4 and 12 and isoA_r/isoB_r > 1.3 and modelMag_r < 21
""",
        description="Edge-on / elongated galaxy selection by isophotal shape."),
    DataMiningQuery(
        "Q5", "Galaxies with a de Vaucouleurs profile and elliptical-galaxy colours",
        CATEGORY_SCAN, """
select objID, modelMag_u - modelMag_g as ug, modelMag_g - modelMag_r as gr
from Galaxy
where lnLDeV_r > lnLExp_r + 10
  and modelMag_u - modelMag_g > 1.5
  and modelMag_g - modelMag_r > 0.7
  and modelMag_r < 21
""",
        description="One of the paper's named 'complex colour cut' scans (queries 5, 14, 19, 20): "
                    "a table scan limited by disk speed."),
    DataMiningQuery(
        "Q6", "Galaxies that are blended with a star, with the deblended magnitudes",
        CATEGORY_JOIN, """
select g.objID as galaxyID, s.objID as starID, g.modelMag_r as galaxyMag, s.modelMag_r as starMag
from PhotoObj g
join PhotoObj s on s.parentID = g.parentID
where g.parentID > 0 and s.parentID > 0
  and g.type = 3 and s.type = 6 and g.objID <> s.objID
""",
        description="Deblend-family self-join through the parentID index."),
    DataMiningQuery(
        "Q7", "Star-like objects that are rare (about 1%) in colour-colour bins",
        CATEGORY_AGGREGATE, """
select round(psfMag_u - psfMag_g, 1) as ug, round(psfMag_g - psfMag_r, 1) as gr, count(*) as n
from Star
where psfMag_r < 21
group by round(psfMag_u - psfMag_g, 1), round(psfMag_g - psfMag_r, 1)
having count(*) <= 2
order by n
""",
        description="Colour-space binning with a rarity cut: an aggregation over a scan."),
    DataMiningQuery(
        "Q8", "Galaxies with spectra having an H-alpha equivalent width greater than 40 Angstroms",
        CATEGORY_JOIN, """
select s.specObjID, s.z, l.ew
from SpecObj s
join SpecLine l on l.specObjID = s.specObjID
where s.specClass = 2 and l.lineID = 6565 and l.ew > 40
""",
        description="Spectroscopic join: strong H-alpha emitters (star-forming galaxies)."),
    DataMiningQuery(
        "Q9", "Quasar spectra with redshift between 1 and 2 and bright i magnitudes",
        CATEGORY_INDEX_LOOKUP, """
select s.specObjID, s.z, p.modelMag_i
from SpecQSO s
join PhotoObj p on p.objID = s.objID
where s.z between 1 and 2 and p.modelMag_i < 20.5
""",
        description="Index lookup through the spectral-class/redshift index, probing PhotoObj."),
    DataMiningQuery(
        "Q10", "All objects in a rectangular area of the sky brighter than magnitude 21",
        CATEGORY_SPATIAL, """
select R.objID, R.ra, R.dec, R.modelMag_r
from fGetObjFromRectEq(184.9, -0.55, 185.1, -0.45) as R
where R.modelMag_r < 21
""",
        description="Rectangular field search through the spatial function (the web form's query)."),
    DataMiningQuery(
        "Q10A", "The same rectangular search phrased directly against the HTM cover ranges",
        CATEGORY_SPATIAL, """
select count(*) as nObj
from spHTM_Cover(185, -0.5, 3) as C, PhotoObj as P
where P.htmID between C.htmIDstart and C.htmIDend
""",
        description="The 'too primitive for most users' formulation of §9.1.4: joining the raw "
                    "HTM cover table against PhotoObj."),
    DataMiningQuery(
        "Q11", "Spectra the pipeline could not classify",
        CATEGORY_INDEX_LOOKUP, """
select specObjID, z, zConf
from SpecObj
where specClass = 0
""",
        description="Quality-assurance lookup on the spectral-class index."),
    DataMiningQuery(
        "Q12", "Low-redshift galaxies with red rest-frame colours (photometric-redshift training set)",
        CATEGORY_JOIN, """
select p.objID, s.z, p.modelMag_g - p.modelMag_r as gr
from SpecGalaxy s
join PhotoObj p on p.objID = s.objID
where s.z between 0.05 and 0.15 and p.modelMag_g - p.modelMag_r > 0.7
""",
        description="The redshift-estimator training-set selection behind the paper's closing anecdote."),
    DataMiningQuery(
        "Q13", "Gravitational lens candidates: close pairs of objects with nearly identical colours",
        CATEGORY_JOIN, """
select n.objID, n.neighborObjID, n.distance
from Neighbors n
join PhotoObj p1 on p1.objID = n.objID
join PhotoObj p2 on p2.objID = n.neighborObjID
where n.distance < 0.5
  and p1.type = 3 and p2.type = 3
  and p1.objID < p2.objID
  and abs((p1.modelMag_g - p1.modelMag_r) - (p2.modelMag_g - p2.modelMag_r)) < 0.05
  and abs(p1.modelMag_r - p2.modelMag_r) < 0.5
""",
        description="The motivating 'find gravitational lens candidates' query: a spatial join "
                    "answered from the pre-computed Neighbors table."),
    DataMiningQuery(
        "Q14", "Very red point sources (brown-dwarf / late-type star candidates)",
        CATEGORY_SCAN, """
select objID, psfMag_i - psfMag_z as iz, psfMag_i
from Star
where psfMag_i - psfMag_z > 0.5 and psfMag_i < 21
""",
        description="A named colour-cut scan (queries 5, 14, 19, 20): table scan with a colour predicate."),
    DataMiningQuery(
        "Q15A", "Find all asteroids (slow-moving objects)",
        CATEGORY_SCAN, QUERY_15A_SQL, verbatim=True,
        description="The paper's moving-object scan (Figure 11): a sequential scan computing "
                    "velocities; 1 303 candidates in the paper's 14M-row table."),
    DataMiningQuery(
        "Q15B", "Find fast-moving (near-earth) objects as elongated red/green detection pairs",
        CATEGORY_JOIN, QUERY_15B_SQL, verbatim=True,
        description="The NEO pair query (Figure 12): nested-loop join of two covering-index scans; "
                    "4 pairs found in the paper, ~10 minutes without the index vs 55 s with it."),
    DataMiningQuery(
        "Q16", "Object counts per field (star and galaxy densities across the survey)",
        CATEGORY_AGGREGATE, """
select run, camcol, field, count(*) as nObj
from PhotoObj
group by run, camcol, field
order by nObj desc
""",
        description="Survey bookkeeping aggregate: one group per field."),
    DataMiningQuery(
        "Q17", "Stars with large proper motions from the USNO cross-match",
        CATEGORY_JOIN, """
select p.objID, u.properMotion, p.psfMag_r
from USNO u
join PhotoObj p on p.objID = u.objID
where u.properMotion > 30 and p.type = 6
""",
        description="Cross-survey join against the USNO relationship table."),
    DataMiningQuery(
        "Q18", "Galaxy environment: objects with many companions within half an arcminute",
        CATEGORY_JOIN, """
select n.objID, count(*) as companions
from Neighbors n
join PhotoObj p on p.objID = n.objID
where p.type = 3
group by n.objID
having count(*) >= 5
order by companions desc
""",
        description="Cluster-environment query: the heaviest join + aggregation in the suite "
                    "(Figure 13's slow end)."),
    DataMiningQuery(
        "Q19", "Quasar candidates from UV-excess colour cuts",
        CATEGORY_SCAN, """
select objID, psfMag_u - psfMag_g as ug, psfMag_g - psfMag_r as gr
from Star
where psfMag_u - psfMag_g < 0.4
  and psfMag_g - psfMag_r < 0.5
  and psfMag_r < 20.5
""",
        description="A named colour-cut scan: UV-excess quasar candidate selection."),
    DataMiningQuery(
        "Q20", "Brightest cluster galaxies: bright galaxies with several close galaxy companions",
        CATEGORY_JOIN, """
select p.objID, p.modelMag_r, count(*) as companions
from Galaxy p
join Neighbors n on n.objID = p.objID
join PhotoObj q on q.objID = n.neighborObjID
where q.type = 3 and p.modelMag_r < 20
group by p.objID, p.modelMag_r
having count(*) >= 3
order by companions desc
""",
        description="A named heavy query: three-way join plus aggregation to rank cluster centres."),
]

#: Stand-ins for the "15 additional queries posed by astronomers" (§11), which
#: the paper notes are much simpler and faster than the original 20.
ADDITIONAL_SIMPLE_QUERIES: list[DataMiningQuery] = [
    DataMiningQuery("SX1", "All attributes of one object by id", CATEGORY_INDEX_LOOKUP,
                    "select top 1 * from PhotoObj where objID = {objid}"),
    DataMiningQuery("SX2", "Spectral lines of one spectrum", CATEGORY_INDEX_LOOKUP,
                    "select * from SpecLine where specObjID = {specobjid}"),
    DataMiningQuery("SX3", "Bright galaxies (simple magnitude cut)", CATEGORY_SCAN,
                    "select objID, modelMag_r from Galaxy where modelMag_r < 17.5"),
    DataMiningQuery("SX4", "Redshift histogram of confident galaxy spectra", CATEGORY_AGGREGATE,
                    "select round(z, 1) as zbin, count(*) as n from SpecGalaxy "
                    "group by round(z, 1) order by zbin"),
    DataMiningQuery("SX5", "Counts of each object type", CATEGORY_AGGREGATE,
                    "select type, count(*) as n from PhotoObj group by type order by n desc"),
]


def query_by_id(query_id: str) -> DataMiningQuery:
    """Look up a benchmark query by its id (e.g. ``'Q15B'``)."""
    for query in DATA_MINING_QUERIES + ADDITIONAL_SIMPLE_QUERIES:
        if query.query_id.lower() == query_id.lower():
            return query
    raise KeyError(f"no data-mining query with id {query_id!r}")


def all_query_ids(*, include_additional: bool = False) -> list[str]:
    queries: Sequence[DataMiningQuery] = DATA_MINING_QUERIES
    if include_additional:
        queries = list(queries) + ADDITIONAL_SIMPLE_QUERIES
    return [query.query_id for query in queries]


def fill_placeholders(query: DataMiningQuery, *, objid: Optional[int] = None,
                      specobjid: Optional[int] = None) -> str:
    """Substitute the {objid} / {specobjid} placeholders of the SX queries."""
    sql = query.sql
    if "{objid}" in sql:
        sql = sql.replace("{objid}", str(objid if objid is not None else 0))
    if "{specobjid}" in sql:
        sql = sql.replace("{specobjid}", str(specobjid if specobjid is not None else 0))
    return sql
