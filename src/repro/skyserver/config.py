"""Server configuration: one declarative object instead of kwarg soup.

``SkyServer.from_survey`` historically grew a flag per feature
(``columnar=``, ``shards=``, ``partition=``, ``analyze=``,
``parallelism=``, ...), and every call site repeated the subset it
cared about.  :class:`ServerConfig` groups the knobs by the subsystem
they steer — storage layout and durability, cluster partitioning,
planner behaviour, the serving pool — and is what
:meth:`SkyServer.create` consumes.  All sections are frozen
dataclasses with sensible defaults, so ``ServerConfig()`` is the plain
single-node in-memory row-store server the tests start from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..pipeline import SurveyConfig
from .limits import QueryLimits


@dataclass(frozen=True)
class StorageConfig:
    """Physical layout and durability of the loaded tables.

    ``columnar`` selects compressed columnar segments (sealed every
    4096 rows, zone maps, dictionary/RLE/delta encodings) over the row
    store.  ``path`` makes the server durable: segments checkpoint to
    an on-disk tree there and every DML statement is WAL-logged so a
    crash recovers to the last committed write.  ``fsync`` additionally
    forces each WAL append to stable storage (slow; tests leave it off
    and rely on OS-crash-excluded torn-write semantics).
    """

    columnar: bool = False
    path: Optional[str] = None
    fsync: bool = False

    @property
    def durable(self) -> bool:
        return self.path is not None


@dataclass(frozen=True)
class ClusterConfig:
    """Horizontal partitioning: ``shards > 1`` builds an in-process
    shard cluster with ``partition`` placement (``hash``, ``zone``
    declination bands, or ``htm`` trixel ranges)."""

    shards: int = 1
    partition: str = "hash"

    @property
    def clustered(self) -> bool:
        return self.shards > 1


@dataclass(frozen=True)
class PlannerConfig:
    """Optimizer inputs: collect ANALYZE statistics at load time, and
    the per-session morsel parallelism degree."""

    analyze: bool = True
    parallelism: int = 1


@dataclass(frozen=True)
class PoolConfig:
    """The concurrent serving pool.  ``workers = 0`` (the default)
    starts no pool; :meth:`SkyServer.start_pool` can attach one later."""

    workers: int = 0
    result_cache_size: int = 256


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability (ISSUE 10): tracing, the query log, slow queries.

    ``tracing`` turns per-query spans on (the default — they are cheap
    and change only counters, never plans or results).  ``query_log``
    appends one row per served statement to the durable ``QueryLog``
    table, queryable with SQL and analyzable by
    :func:`repro.traffic.analyze_query_log`.  Statements slower than
    ``slow_query_seconds`` additionally land in the in-memory slow-query
    log surfaced by ``SkyServer.telemetry_report()``.
    ``trace_capacity`` bounds how many recent query traces are retained.
    """

    tracing: bool = True
    query_log: bool = True
    slow_query_seconds: float = 1.0
    trace_capacity: int = 128


@dataclass(frozen=True)
class ServerConfig:
    """Everything :meth:`SkyServer.create` needs to stand up a server."""

    survey: Optional[SurveyConfig] = None
    storage: StorageConfig = field(default_factory=StorageConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    pool: PoolConfig = field(default_factory=PoolConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    limits: Optional[QueryLimits] = None
    site_name: str = "SkyServer (reproduction)"
    build_neighbors: bool = True
