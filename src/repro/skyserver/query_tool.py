"""SkyServerQA: the query-analyzer tool, minus the GUI (paper §4).

The Java applet's value was (a) an object browser over the database
schema with tool-tip documentation, (b) text query execution with
per-query statistics (execution time rounded to the nearest second,
connection information, catalog and server name) and (c) result export
in grid / CSV / XML / FITS formats.  All three are provided here as a
plain Python class over a :class:`~repro.skyserver.server.SkyServer`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

from ..engine import QueryResult
from .formats import FORMATS, render
from .server import SkyServer


@dataclass
class ExecutionStatistics:
    """The status-window contents shown after each query."""

    elapsed_seconds: float
    rounded_seconds: int
    row_count: int
    catalog: str
    server: str
    user: str
    #: Engine-side counters: whether this query reused a cached plan and
    #: how many expression trees were compiled for its execution.
    plan_cache_hit: bool = False
    compiled_expressions: int = 0

    def describe(self) -> str:
        plan_source = "cached plan" if self.plan_cache_hit else "fresh plan"
        return (f"{self.row_count} rows in {self.rounded_seconds} s "
                f"(user {self.user} on {self.server}, catalog {self.catalog}; "
                f"{plan_source}, {self.compiled_expressions} compiled exprs)")


@dataclass
class QueryOutput:
    """A query's rendered result plus its execution statistics."""

    result: QueryResult
    rendered: str | bytes
    statistics: ExecutionStatistics


class QueryAnalyzer:
    """The SkyServerQA substitute: schema browsing + query execution + export."""

    def __init__(self, server: SkyServer, *, user: str = "guest"):
        self.server = server
        self.user = user

    # -- query execution -----------------------------------------------------

    def execute(self, sql: str, output_format: str = "grid") -> QueryOutput:
        """Run a query and return its rendered output and statistics."""
        if output_format.lower() not in FORMATS:
            raise ValueError(f"unknown output format {output_format!r}; expected one of {FORMATS}")
        started = time.perf_counter()
        result = self.server.query(sql)
        elapsed = time.perf_counter() - started
        statistics = ExecutionStatistics(
            elapsed_seconds=elapsed,
            rounded_seconds=int(round(elapsed)),
            row_count=len(result.rows),
            catalog=self.server.database.name,
            server=self.server.site_name,
            user=self.user,
            plan_cache_hit=result.statistics.plan_cache_hits > 0,
            compiled_expressions=result.statistics.exprs_compiled,
        )
        return QueryOutput(result=result, rendered=render(result, output_format),
                           statistics=statistics)

    def explain(self, sql: str) -> str:
        return self.server.explain(sql)

    # -- the object browser -----------------------------------------------------

    def tables(self) -> list[str]:
        return self.server.database.table_names()

    def views(self) -> list[str]:
        return self.server.database.view_names()

    def functions(self) -> dict[str, list[dict[str, str]]]:
        return self.server.database.functions.describe()

    def columns(self, table_name: str) -> list[dict[str, Any]]:
        """Columns with data types, nullability, units and tool-tip descriptions."""
        return self.server.database.table(table_name).describe()["columns"]

    def tooltip(self, table_name: str, column_name: Optional[str] = None) -> str:
        """The tool-tip text shown when a table or column is selected."""
        table = self.server.database.table(table_name)
        if column_name is None:
            return table.description or table.name
        column = table.column(column_name)
        if column is None:
            raise KeyError(f"no column {column_name!r} in {table_name}")
        unit = f" [{column.unit}]" if column.unit else ""
        return f"{column.name} ({column.dtype.value}){unit}: {column.description}"

    def indexes(self, table_name: str) -> list[dict[str, Any]]:
        """Indices of a table: the columns on which they are built."""
        return [index.describe() for index in
                self.server.database.table(table_name).indexes.values()]

    def constraints(self, table_name: str) -> dict[str, Any]:
        """Primary- and foreign-key constraints, with referenced tables."""
        table = self.server.database.table(table_name)
        return {
            "primary_key": table.primary_key_columns(),
            "foreign_keys": [
                {
                    "columns": list(fk.columns),
                    "references": fk.referenced_table,
                    "referenced_columns": list(fk.referenced_columns),
                }
                for fk in table.foreign_keys
            ],
        }

    def dependencies(self, view_name: str) -> list[str]:
        """The chain of relations a view depends on, ending at the base table."""
        database = self.server.database
        chain: list[str] = []
        current = view_name
        while database.has_view(current):
            view = database.view(current)
            chain.append(view.base)
            current = view.base
        return chain
