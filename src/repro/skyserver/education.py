"""Educational projects (paper §6).

Two of the paper's projects are data products this module can build
from a loaded server:

* the **Hubble diagram** project ("a plot of the velocities (or
  redshifts) of distant galaxies as a function of their distances from
  Earth"), for which the students need a small table of galaxy
  redshifts and magnitudes — Figure 4 plots nine of them;
* the **Old-Time Astronomy** sketching project, for which the students
  need cut-out images of a handful of photogenic objects.

Both are deliberately thin layers over public SQL so they double as
documentation of how the education pages use the same interfaces as the
astronomers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .server import SkyServer


@dataclass
class HubblePoint:
    """One galaxy on the student Hubble diagram."""

    obj_id: int
    redshift: float
    magnitude: float

    @property
    def velocity_km_s(self) -> float:
        """The low-redshift approximation v = c·z the project uses."""
        return 299792.458 * self.redshift

    @property
    def relative_distance(self) -> float:
        """Relative distance from the magnitude (distance modulus, arbitrary zero)."""
        return 10.0 ** (self.magnitude / 5.0)


@dataclass
class HubbleDiagram:
    """The data behind Figure 4's right panel."""

    points: list[HubblePoint]

    def slope_mag_per_dex(self) -> float:
        """Least-squares slope of magnitude against log10(redshift).

        An expanding universe gives ≈5 magnitudes per decade of redshift
        at low z; the project asks students to "discover" the trend.
        """
        usable = [point for point in self.points if point.redshift > 0]
        if len(usable) < 2:
            return 0.0
        xs = [math.log10(point.redshift) for point in usable]
        ys = [point.magnitude for point in usable]
        n = len(usable)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        variance = sum((x - mean_x) ** 2 for x in xs)
        return covariance / variance if variance else 0.0

    def is_expanding(self) -> bool:
        """Fainter galaxies have higher redshift: the expansion signature."""
        return self.slope_mag_per_dex() > 0


def hubble_diagram(server: SkyServer, *, count: int = 9,
                   max_redshift: float = 0.5) -> HubbleDiagram:
    """Build the student Hubble diagram from confident galaxy spectra.

    Returns ``count`` galaxies spread over the available redshift range
    (Figure 4 uses nine), each with its redshift and r-band magnitude.
    """
    result = server.query(f"""
        select p.objID, s.z, p.petroMag_r
        from SpecGalaxy s
        join PhotoObj p on p.objID = s.objID
        where s.z > 0.001 and s.z < {max_redshift}
        order by s.z
    """)
    rows = result.rows
    if not rows:
        return HubbleDiagram(points=[])
    if len(rows) > count:
        stride = len(rows) / count
        rows = [rows[int(index * stride)] for index in range(count)]
    points = [HubblePoint(obj_id=row["objID"], redshift=row["z"],
                          magnitude=row["petroMag_r"]) for row in rows]
    return HubbleDiagram(points=points)


@dataclass
class SketchTarget:
    """One object for the Old-Time Astronomy sketching exercise."""

    obj_id: int
    ra: float
    dec: float
    magnitude: float
    petro_radius: float
    explorer_url: str


def old_time_astronomy_targets(server: SkyServer, *, count: int = 6) -> list[SketchTarget]:
    """Photogenic (bright, extended) galaxies for the sketching project."""
    rows = server.famous_places(count)
    return [SketchTarget(obj_id=row["objID"], ra=row["ra"], dec=row["dec"],
                         magnitude=row["modelMag_r"], petro_radius=row["petroRad_r"],
                         explorer_url=row["url"]) for row in rows]


@dataclass
class ProjectCatalogEntry:
    """One entry of the education-project catalog (the audience levels of §6)."""

    name: str
    level: str
    description: str
    teacher_site: bool = True


def project_catalog() -> list[ProjectCatalogEntry]:
    """The project ladder the paper describes, from 'For Kids' to 'Challenges'."""
    return [
        ProjectCatalogEntry(
            "Old Time Astronomy", "For Kids",
            "Sketch SDSS images the way pre-photography astronomers recorded the sky."),
        ProjectCatalogEntry(
            "Colors of Stars", "For Kids",
            "Compare the colours of bright stars using the five-band magnitudes."),
        ProjectCatalogEntry(
            "The Hubble Diagram", "Advanced / High School",
            "Plot redshift against relative distance for galaxies and discover the expansion."),
        ProjectCatalogEntry(
            "Galaxy Zoo Warm-up", "General Astronomy",
            "Classify galaxies as spirals or ellipticals from their images and profile fits."),
        ProjectCatalogEntry(
            "Quasar Hunting", "Challenges",
            "Use colour cuts and the spectroscopic tables to find quasars, then check redshifts."),
        ProjectCatalogEntry(
            "Asteroid Search", "Challenges",
            "Re-run the moving-object query and estimate how many asteroids the survey sees.",
            teacher_site=False),
    ]
