"""Result formats.

SkyServerQA "provides results in three formats: 1. Grid Based for quick
viewing, 2. Column Separated Values (CSV) ASCII for use in spreadsheets
and text tools, 3. XML for applications that can read XML data,
4. FITS is a file format widely used in astronomy" (paper §4 — the
enumeration says three and lists four; all four are implemented here).
"""

from __future__ import annotations

import datetime as _dt
import io
import xml.sax.saxutils as _xml
from typing import Any, Sequence

from ..engine import QueryResult

#: Names accepted by :func:`render`.
FORMATS = ("grid", "csv", "xml", "fits")


def _cell_text(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, _dt.datetime):
        return value.isoformat()
    if isinstance(value, (bytes, bytearray)):
        return f"<blob {len(value)} bytes>"
    return str(value)


def render_grid(result: QueryResult, *, max_rows: int | None = None) -> str:
    """A fixed-width text grid (the quick-viewing format)."""
    columns = result.columns or (list(result.rows[0].keys()) if result.rows else [])
    rows = result.rows if max_rows is None else result.rows[:max_rows]
    cells = [[_cell_text(row.get(column)) for column in columns] for row in rows]
    widths = [max(len(column), *(len(row[i]) for row in cells)) if cells else len(column)
              for i, column in enumerate(columns)]
    lines = []
    lines.append("  ".join(column.ljust(width) for column, width in zip(columns, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    lines.append(f"({len(result.rows)} row(s) affected)")
    return "\n".join(lines)


def render_csv(result: QueryResult) -> str:
    """Comma-separated values with a header row."""
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    columns = result.columns or (list(result.rows[0].keys()) if result.rows else [])
    writer.writerow(columns)
    for row in result.rows:
        writer.writerow([_cell_text(row.get(column)) if row.get(column) is not None else ""
                         for column in columns])
    return buffer.getvalue()


def render_xml(result: QueryResult, *, root: str = "SkyServerResult") -> str:
    """A simple row/column XML rendering."""
    columns = result.columns or (list(result.rows[0].keys()) if result.rows else [])
    lines = ["<?xml version='1.0' encoding='utf-8'?>", f"<{root}>"]
    for row in result.rows:
        lines.append("  <Row>")
        for column in columns:
            value = _xml.escape(_cell_text(row.get(column)))
            name = _sanitize_tag(column)
            lines.append(f"    <{name}>{value}</{name}>")
        lines.append("  </Row>")
    lines.append(f"</{root}>")
    return "\n".join(lines)


def render_fits_table(result: QueryResult) -> bytes:
    """A minimal FITS binary with an ASCII-table extension.

    The encoding follows the FITS 80-character card / 2880-byte block
    conventions closely enough that the structural tests can parse the
    header back; it is a stand-in for a full FITS writer, which the
    paper's tool obtained from a library.
    """
    columns = result.columns or (list(result.rows[0].keys()) if result.rows else [])
    text_rows = [[_cell_text(row.get(column)) for column in columns] for row in result.rows]
    widths = [max(16, len(column), *(len(row[i]) for row in text_rows)) if text_rows
              else max(16, len(column)) for i, column in enumerate(columns)]
    row_length = sum(widths)

    def card(keyword: str, value: str, comment: str = "") -> str:
        body = f"{keyword:<8}= {value:>20}"
        if comment:
            body += f" / {comment}"
        return body.ljust(80)[:80]

    header_cards = [
        card("SIMPLE", "T", "SkyServer reproduction FITS"),
        card("BITPIX", "8"),
        card("NAXIS", "0"),
        card("EXTEND", "T"),
        "END".ljust(80),
    ]
    table_cards = [
        card("XTENSION", "'TABLE   '", "ASCII table extension"),
        card("BITPIX", "8"),
        card("NAXIS", "2"),
        card("NAXIS1", str(row_length)),
        card("NAXIS2", str(len(text_rows))),
        card("PCOUNT", "0"),
        card("GCOUNT", "1"),
        card("TFIELDS", str(len(columns))),
    ]
    position = 1
    for index, (column, width) in enumerate(zip(columns, widths), start=1):
        table_cards.append(card(f"TTYPE{index}", f"'{column[:18]:<8}'"))
        table_cards.append(card(f"TBCOL{index}", str(position)))
        table_cards.append(card(f"TFORM{index}", f"'A{width}'"))
        position += width
    table_cards.append("END".ljust(80))

    def block(cards: Sequence[str]) -> bytes:
        text = "".join(cards)
        padding = (2880 - len(text) % 2880) % 2880
        return (text + " " * padding).encode("ascii")

    data = "".join("".join(value.ljust(width) for value, width in zip(row, widths))
                   for row in text_rows)
    data_padding = (2880 - len(data) % 2880) % 2880
    return block(header_cards) + block(table_cards) + (data + " " * data_padding).encode("ascii")


def render(result: QueryResult, fmt: str = "grid") -> str | bytes:
    """Render a query result in one of the supported formats."""
    fmt = fmt.lower()
    if fmt == "grid":
        return render_grid(result)
    if fmt == "csv":
        return render_csv(result)
    if fmt == "xml":
        return render_xml(result)
    if fmt == "fits":
        return render_fits_table(result)
    raise ValueError(f"unknown result format {fmt!r}; expected one of {FORMATS}")


def _sanitize_tag(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "c_" + cleaned
    return cleaned
