"""Public-server resource limits.

"The public SkyServer limits queries to 1,000 records or 30 seconds of
computation.  For more demanding queries, the users must use a private
SkyServer." (paper §4)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: The published public-server limits.
PUBLIC_ROW_LIMIT = 1000
PUBLIC_TIME_LIMIT_SECONDS = 30.0


@dataclass(frozen=True)
class QueryLimits:
    """Row-count and elapsed-time ceilings applied to a query."""

    max_rows: Optional[int] = PUBLIC_ROW_LIMIT
    max_seconds: Optional[float] = PUBLIC_TIME_LIMIT_SECONDS

    @classmethod
    def public(cls) -> "QueryLimits":
        """The limits the public web site enforces."""
        return cls(PUBLIC_ROW_LIMIT, PUBLIC_TIME_LIMIT_SECONDS)

    @classmethod
    def private(cls) -> "QueryLimits":
        """A private SkyServer (or the batch loader): no limits."""
        return cls(None, None)

    def describe(self) -> str:
        rows = "unlimited" if self.max_rows is None else f"{self.max_rows} rows"
        seconds = ("unlimited" if self.max_seconds is None
                   else f"{self.max_seconds:g} seconds")
        return f"{rows} / {seconds}"
