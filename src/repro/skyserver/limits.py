"""Public-server resource limits and per-class admission quotas.

"The public SkyServer limits queries to 1,000 records or 30 seconds of
computation.  For more demanding queries, the users must use a private
SkyServer." (paper §4)

Per-query budgets (:class:`QueryLimits`) bound what one query may cost;
:class:`ServiceClass` adds the *admission-control* dimension the
concurrent serving pool (:mod:`repro.skyserver.pool`) enforces: how
many queries of a class may run at once, how many may wait in the
queue, and how long one may wait before the pool gives up on it.  The
default classes mirror the paper's user population — anonymous public
web users, "power" users running heavier mining queries, and the
operators' administrative access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: The published public-server limits.
PUBLIC_ROW_LIMIT = 1000
PUBLIC_TIME_LIMIT_SECONDS = 30.0


@dataclass(frozen=True)
class QueryLimits:
    """Row-count and elapsed-time ceilings applied to a query."""

    max_rows: Optional[int] = PUBLIC_ROW_LIMIT
    max_seconds: Optional[float] = PUBLIC_TIME_LIMIT_SECONDS

    @classmethod
    def public(cls) -> "QueryLimits":
        """The limits the public web site enforces."""
        return cls(PUBLIC_ROW_LIMIT, PUBLIC_TIME_LIMIT_SECONDS)

    @classmethod
    def private(cls) -> "QueryLimits":
        """A private SkyServer (or the batch loader): no limits."""
        return cls(None, None)

    def describe(self) -> str:
        rows = "unlimited" if self.max_rows is None else f"{self.max_rows} rows"
        seconds = ("unlimited" if self.max_seconds is None
                   else f"{self.max_seconds:g} seconds")
        return f"{rows} / {seconds}"


@dataclass(frozen=True)
class ServiceClass:
    """Admission-control quotas for one class of users.

    ``max_concurrent`` caps how many of this class's queries execute
    simultaneously; ``max_queue_depth`` caps how many may wait for a
    worker (beyond it, submissions are rejected outright — the web tier
    should tell the user to retry, not buffer unbounded work);
    ``queue_timeout_seconds`` bounds the wait itself (``None`` = wait
    forever).  ``limits`` is the per-query row/time budget every query
    of the class runs under.
    """

    name: str
    limits: QueryLimits = field(default_factory=QueryLimits.public)
    max_concurrent: int = 4
    max_queue_depth: int = 32
    queue_timeout_seconds: Optional[float] = 30.0

    def describe(self) -> str:
        timeout = ("no queue timeout" if self.queue_timeout_seconds is None
                   else f"{self.queue_timeout_seconds:g}s queue timeout")
        return (f"{self.name}: {self.limits.describe()}, "
                f"{self.max_concurrent} concurrent, "
                f"queue depth {self.max_queue_depth}, {timeout}")


def default_service_classes() -> dict[str, ServiceClass]:
    """The pool's default admission classes (public / power / admin)."""
    return {
        "public": ServiceClass(
            "public", QueryLimits.public(),
            max_concurrent=8, max_queue_depth=64, queue_timeout_seconds=30.0),
        "power": ServiceClass(
            "power", QueryLimits(max_rows=100_000, max_seconds=300.0),
            max_concurrent=4, max_queue_depth=16, queue_timeout_seconds=120.0),
        "admin": ServiceClass(
            "admin", QueryLimits.private(),
            max_concurrent=2, max_queue_depth=8, queue_timeout_seconds=None),
    }
