"""URL helper functions.

Query 15 selects ``dbo.fGetUrlExpId(objID) as Url`` "so that it can be
easily examined" — the function renders the web site's object-explorer
URL for an object id.  The equivalent helpers for navigation and chart
URLs are provided as well, and all are registered as scalar functions.
"""

from __future__ import annotations

from ..engine import Database
from ..pipeline.photometric import decode_obj_id

#: Base URL of the public server (the reproduction keeps the real site's layout).
BASE_URL = "http://skyserver.sdss.org/en"


def url_for_object(obj_id: int) -> str:
    """``fGetUrlExpId``: the object-explorer URL for an objID."""
    return f"{BASE_URL}/tools/explore/obj.asp?id={int(obj_id)}"


def url_for_spectrum(spec_obj_id: int) -> str:
    """``fGetUrlSpecImg``: the spectrum-image URL for a specObjID."""
    return f"{BASE_URL}/get/specById.asp?id={int(spec_obj_id)}"


def url_for_navigation(ra: float, dec: float, zoom: int = 0) -> str:
    """``fGetUrlNavEq``: the pan/zoom navigation URL for a position."""
    return f"{BASE_URL}/tools/chart/navi.asp?ra={ra:.5f}&dec={dec:.5f}&zoom={int(zoom)}"


def url_for_frame(obj_id: int, zoom: int = 0) -> str:
    """``fGetUrlFrameImg``: the frame-image URL for an object's field."""
    parts = decode_obj_id(int(obj_id))
    return (f"{BASE_URL}/get/frameByRCFZ.asp?run={parts['run']}&camcol={parts['camcol']}"
            f"&field={parts['field']}&zoom={int(zoom)}")


def register_url_functions(database: Database) -> None:
    """Register the URL helpers as scalar SQL functions."""
    database.register_scalar_function(
        "fGetUrlExpId", url_for_object,
        description="Object-explorer URL for an objID (used by Query 15)", replace=True)
    database.register_scalar_function(
        "fGetUrlSpecImg", url_for_spectrum,
        description="Spectrum-image URL for a specObjID", replace=True)
    database.register_scalar_function(
        "fGetUrlNavEq", url_for_navigation,
        description="Navigation (pan/zoom) URL for an (ra, dec) position", replace=True)
    database.register_scalar_function(
        "fGetUrlFrameImg", url_for_frame,
        description="Frame-image URL for an object's field", replace=True)
