"""The public SkyServer service layer."""

from .config import (ClusterConfig, PlannerConfig, PoolConfig, ServerConfig,
                     StorageConfig)
from .education import (HubbleDiagram, HubblePoint, ProjectCatalogEntry,
                        SketchTarget, hubble_diagram, old_time_astronomy_targets,
                        project_catalog)
from .formats import FORMATS, render, render_csv, render_fits_table, render_grid, render_xml
from .limits import (PUBLIC_ROW_LIMIT, PUBLIC_TIME_LIMIT_SECONDS, QueryLimits,
                     ServiceClass, default_service_classes)
from .personal import PersonalExtractSummary, extract_personal_skyserver
from .pool import (AdmissionRejected, PoolShutdown, QueryTicket, QueueTimeout,
                   ResultCache, SkyServerPool)
from .queries import (ADDITIONAL_SIMPLE_QUERIES, DATA_MINING_QUERIES,
                      CATEGORY_AGGREGATE, CATEGORY_INDEX_LOOKUP, CATEGORY_JOIN,
                      CATEGORY_SCAN, CATEGORY_SPATIAL, DataMiningQuery,
                      all_query_ids, query_by_id)
from .query_tool import ExecutionStatistics, QueryAnalyzer, QueryOutput
from .server import QueryExecution, SkyServer
from .spatial import (get_htm_id, get_nearby_objects, get_nearest_object,
                      get_objects_in_rect, htm_cover_circle,
                      register_spatial_functions)
from .urls import (register_url_functions, url_for_frame, url_for_navigation,
                   url_for_object, url_for_spectrum)

__all__ = [
    "SkyServer",
    "ServerConfig",
    "StorageConfig",
    "ClusterConfig",
    "PlannerConfig",
    "PoolConfig",
    "QueryExecution",
    "QueryAnalyzer",
    "QueryOutput",
    "ExecutionStatistics",
    "QueryLimits",
    "ServiceClass",
    "default_service_classes",
    "SkyServerPool",
    "QueryTicket",
    "ResultCache",
    "AdmissionRejected",
    "QueueTimeout",
    "PoolShutdown",
    "PUBLIC_ROW_LIMIT",
    "PUBLIC_TIME_LIMIT_SECONDS",
    "DataMiningQuery",
    "DATA_MINING_QUERIES",
    "ADDITIONAL_SIMPLE_QUERIES",
    "CATEGORY_INDEX_LOOKUP",
    "CATEGORY_SPATIAL",
    "CATEGORY_SCAN",
    "CATEGORY_JOIN",
    "CATEGORY_AGGREGATE",
    "query_by_id",
    "all_query_ids",
    "register_spatial_functions",
    "get_nearby_objects",
    "get_nearest_object",
    "get_objects_in_rect",
    "get_htm_id",
    "htm_cover_circle",
    "register_url_functions",
    "url_for_object",
    "url_for_spectrum",
    "url_for_navigation",
    "url_for_frame",
    "render",
    "render_grid",
    "render_csv",
    "render_xml",
    "render_fits_table",
    "FORMATS",
    "extract_personal_skyserver",
    "PersonalExtractSummary",
    "hubble_diagram",
    "HubbleDiagram",
    "HubblePoint",
    "old_time_astronomy_targets",
    "SketchTarget",
    "project_catalog",
    "ProjectCatalogEntry",
]
