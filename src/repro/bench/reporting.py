"""Paper-vs-measured reporting helpers shared by the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


@dataclass
class ComparisonRow:
    """One metric compared between the paper and the reproduction."""

    metric: str
    paper_value: Any
    measured_value: Any
    unit: str = ""
    note: str = ""

    def ratio(self) -> Optional[float]:
        try:
            paper = float(self.paper_value)
            measured = float(self.measured_value)
        except (TypeError, ValueError):
            return None
        if paper == 0:
            return None
        return measured / paper


@dataclass
class ExperimentReport:
    """A named experiment (one table or figure) and its comparison rows."""

    experiment: str
    description: str = ""
    rows: list[ComparisonRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, metric: str, paper_value: Any, measured_value: Any, *,
            unit: str = "", note: str = "") -> None:
        self.rows.append(ComparisonRow(metric, paper_value, measured_value, unit, note))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        lines = [f"== {self.experiment} =="]
        if self.description:
            lines.append(self.description)
        header = f"{'metric':<42s} {'paper':>16s} {'measured':>16s} {'unit':<12s} note"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(f"{row.metric:<42s} {_fmt(row.paper_value):>16s} "
                         f"{_fmt(row.measured_value):>16s} {row.unit:<12s} {row.note}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def ascii_series(labels: Sequence[str], values: Sequence[float], *, width: int = 50,
                 log_scale: bool = True, title: str = "") -> str:
    """A simple horizontal-bar rendering of a figure's series."""
    lines = [title] if title else []
    positive = [value for value in values if value > 0]
    peak = max(positive, default=1.0)
    floor = min(positive, default=0.1)
    for label, value in zip(labels, values):
        if value <= 0:
            bar = 0
        elif log_scale and peak > floor:
            bar = int(width * (math.log10(value / floor) + 1)
                      / (math.log10(peak / floor) + 1))
        else:
            bar = int(width * value / peak)
        lines.append(f"{label:>14s} {value:12.3f}  " + "#" * max(0, bar))
    return "\n".join(lines)


def same_order_of_magnitude(paper: float, measured: float, *, tolerance: float = 10.0) -> bool:
    """True when the two values agree to within a factor of ``tolerance``."""
    if paper <= 0 or measured <= 0:
        return False
    ratio = measured / paper
    return 1.0 / tolerance <= ratio <= tolerance
