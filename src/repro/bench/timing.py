"""Timing helpers: wall-clock plus process-CPU, as Figure 13 plots both."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Timing:
    """Elapsed and CPU seconds of one measured region."""

    elapsed_seconds: float = 0.0
    cpu_seconds: float = 0.0

    def __str__(self) -> str:
        return f"{self.elapsed_seconds:.3f}s elapsed / {self.cpu_seconds:.3f}s cpu"


@contextmanager
def measure() -> Iterator[Timing]:
    """Context manager measuring elapsed and CPU time of its body."""
    timing = Timing()
    started_wall = time.perf_counter()
    started_cpu = time.process_time()
    try:
        yield timing
    finally:
        timing.elapsed_seconds = time.perf_counter() - started_wall
        timing.cpu_seconds = time.process_time() - started_cpu


@dataclass
class QueryTimingTable:
    """Accumulates per-query timings and renders the Figure 13 series."""

    entries: list[tuple[str, Timing, int]] = field(default_factory=list)

    def add(self, label: str, timing: Timing, rows: int = 0) -> None:
        self.entries.append((label, timing, rows))

    def sorted_by_elapsed(self) -> list[tuple[str, Timing, int]]:
        return sorted(self.entries, key=lambda entry: entry[1].elapsed_seconds)

    def render(self) -> str:
        lines = [f"{'query':>8s} {'rows':>8s} {'cpu (s)':>10s} {'elapsed (s)':>12s}"]
        for label, timing, rows in self.sorted_by_elapsed():
            lines.append(f"{label:>8s} {rows:8d} {timing.cpu_seconds:10.3f} "
                         f"{timing.elapsed_seconds:12.3f}")
        return "\n".join(lines)
