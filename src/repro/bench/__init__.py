"""Shared benchmark-harness helpers (paper-vs-measured reports, timing)."""

from .reporting import (ComparisonRow, ExperimentReport, ascii_series,
                        same_order_of_magnitude)
from .timing import QueryTimingTable, Timing, measure

__all__ = [
    "ExperimentReport",
    "ComparisonRow",
    "ascii_series",
    "same_order_of_magnitude",
    "Timing",
    "measure",
    "QueryTimingTable",
]
