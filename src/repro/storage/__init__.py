"""Durable on-disk storage: binary segment format and write-ahead log.

This package is the disk half of the engine's storage layer.
:mod:`repro.storage.format` serializes the in-memory objects —
:class:`~repro.engine.segments.SealedSegment` with its encodings and
zone maps, row/column store state, ANALYZE statistics — to a compact
tagged binary format that round-trips every engine value bit-for-bit
(−0.0, NaN, > 64-bit integers, unicode, timezone-aware timestamps).
:mod:`repro.storage.wal` provides the CRC-framed append-only log whose
replay semantics (stop at the first torn frame) make crash recovery a
pure function of the bytes that reached disk.

The orchestration — checkpoints, recovery, the table mutation hooks —
lives in :mod:`repro.engine.durable`; this package knows only bytes.
"""

from .format import (FormatError, decode_value, encode_value,
                     statistics_from_state, statistics_state,
                     storage_from_state, storage_state)
from .wal import WalRecord, WriteAheadLog

__all__ = [
    "FormatError",
    "encode_value",
    "decode_value",
    "storage_state",
    "storage_from_state",
    "statistics_state",
    "statistics_from_state",
    "WriteAheadLog",
    "WalRecord",
]
