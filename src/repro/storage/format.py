"""The on-disk binary format: a tagged value codec that understands the
engine's storage objects.

Design constraints, in order:

* **Lossless.**  ``decode(encode(x)) == repr-identical x`` for every
  value the engine stores: NULL, bools, 64-bit and arbitrary-precision
  integers, floats including −0.0 and NaN (bit patterns preserved via
  IEEE-754 serialization), unicode strings, bytes, timezone-aware
  timestamps.  This extends the CONTRIBUTING ground rule for segment
  encodings to the disk boundary.
* **Encoding-preserving.**  A :class:`~repro.engine.segments.SealedSegment`
  serializes *as its encodings* — a dictionary column writes its
  dictionary and code bytes, an RLE column its runs, a delta column its
  base and offset array — plus the prebuilt zone maps.  Reopening a
  checkpoint therefore re-creates the exact in-memory segment objects
  without re-encoding or re-scanning anything.
* **Stdlib only.**  ``struct`` for fixed-width fields, raw
  ``array.tobytes()`` for buffers (item size recorded so a platform
  with different array widths can still decode via ``struct``), no
  pickle (a checkpoint file must never execute code on load).

Framing, CRCs and replay order are the write-ahead log's business
(:mod:`repro.storage.wal`); this module is pure value <-> bytes.
"""

from __future__ import annotations

import datetime as _dt
import struct
from array import array
from typing import Any

from ..engine.segments import (DeltaColumn, DictColumn, PlainColumn,
                               RleColumn, SealedSegment, ZoneStats)
from ..engine.stats import ColumnStatistics, TableStatistics
from ..engine.types import DataType, NULL


class FormatError(ValueError):
    """Malformed bytes handed to the decoder."""


_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: ``array.array`` typecodes whose values are signed (drives the struct
#: fallback when the writing platform's item size differs from ours).
_SIGNED_TYPECODES = frozenset("bhilq")
_FLOAT_TYPECODES = frozenset("fd")
_STRUCT_BY_WIDTH = {
    (1, "uint"): "B", (1, "int"): "b",
    (2, "uint"): "H", (2, "int"): "h",
    (4, "uint"): "I", (4, "int"): "i", (4, "float"): "f",
    (8, "uint"): "Q", (8, "int"): "q", (8, "float"): "d",
}


# ---------------------------------------------------------------------------
# Encoder
# ---------------------------------------------------------------------------

def _put_bytes(out: bytearray, payload: bytes) -> None:
    out += _U32.pack(len(payload))
    out += payload


def _encode(out: bytearray, value: Any) -> None:
    if value is NULL:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif type(value) is int or isinstance(value, int):
        if -(1 << 63) <= value < (1 << 63):
            out += b"i"
            out += _I64.pack(value)
        else:
            # Arbitrary-precision integers (2^60 fits in i; 2^200 does
            # not): decimal text keeps them exact at any width.
            out += b"I"
            _put_bytes(out, str(value).encode("ascii"))
    elif isinstance(value, float):
        out += b"f"
        out += _F64.pack(value)
    elif isinstance(value, str):
        out += b"s"
        _put_bytes(out, value.encode("utf-8"))
    elif isinstance(value, (bytes, bytearray)):
        out += b"b"
        _put_bytes(out, bytes(value))
    elif isinstance(value, _dt.datetime):
        # isoformat round-trips microseconds and UTC offsets exactly.
        out += b"t"
        _put_bytes(out, value.isoformat().encode("ascii"))
    elif isinstance(value, array):
        out += b"A"
        out += value.typecode.encode("ascii")
        out += bytes([value.itemsize])
        _put_bytes(out, value.tobytes())
    elif isinstance(value, list):
        out += b"L"
        out += _U32.pack(len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, tuple):
        out += b"u"
        out += _U32.pack(len(value))
        for item in value:
            _encode(out, item)
    elif isinstance(value, dict):
        out += b"M"
        out += _U32.pack(len(value))
        for key, item in value.items():
            _encode(out, key)
            _encode(out, item)
    elif isinstance(value, DataType):
        out += b"y"
        _put_bytes(out, value.value.encode("ascii"))
    elif isinstance(value, PlainColumn):
        out += b"P"
        _encode(out, value.dtype)
        _encode(out, value.values if isinstance(value.values, array)
                else list(value.values))
    elif isinstance(value, DictColumn):
        out += b"D"
        _encode(out, value.dtype)
        _encode(out, value.dictionary)
        _encode(out, value.codes)
    elif isinstance(value, RleColumn):
        out += b"R"
        _encode(out, value.dtype)
        _encode(out, value.dictionary)
        _encode(out, value.starts)
        _encode(out, value.run_codes)
        _encode(out, value.rows)
    elif isinstance(value, DeltaColumn):
        out += b"V"
        _encode(out, value.dtype)
        _encode(out, value.base)
        _encode(out, value.offsets)
    elif isinstance(value, ZoneStats):
        out += b"Z"
        _encode(out, [value.rows, value.null_count, value.has_null,
                      value.minimum, value.maximum, value.cmp_min,
                      value.cmp_max, value.kind, value.int_sum])
    elif isinstance(value, SealedSegment):
        out += b"S"
        _encode(out, value.base)
        _encode(out, value.rows)
        _encode(out, value.tombstones)
        _encode(out, value.columns)
        _encode(out, value.masks)
        _encode(out, value.zones)
    elif isinstance(value, ColumnStatistics):
        out += b"c"
        _encode(out, [value.column, value.dtype, value.row_count,
                      value.null_count, value.distinct_count, value.minimum,
                      value.maximum, list(value.histogram_bounds),
                      dict(value.mcvs)])
    elif isinstance(value, TableStatistics):
        out += b"j"
        _encode(out, [value.table, value.row_count, value.columns,
                      value.modification_counter])
    else:
        raise FormatError(f"cannot serialize {type(value).__name__}: {value!r}")


def encode_value(value: Any) -> bytes:
    """Serialize one value (scalar or engine storage object) to bytes."""
    out = bytearray()
    _encode(out, value)
    return bytes(out)


# ---------------------------------------------------------------------------
# Decoder
# ---------------------------------------------------------------------------

class _Reader:
    __slots__ = ("data", "offset")

    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise FormatError("truncated value")
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def take_sized(self) -> bytes:
        (size,) = _U32.unpack(self.take(4))
        return self.take(size)


def _decode_array(reader: _Reader) -> array:
    typecode = reader.take(1).decode("ascii")
    itemsize = reader.take(1)[0]
    payload = reader.take_sized()
    native = array(typecode)
    if native.itemsize == itemsize:
        native.frombytes(payload)
        return native
    # A checkpoint written on a platform with different array widths
    # (e.g. 4-byte 'l'): decode item-by-item via struct.
    kind = ("float" if typecode in _FLOAT_TYPECODES
            else "int" if typecode in _SIGNED_TYPECODES else "uint")
    fmt = _STRUCT_BY_WIDTH.get((itemsize, kind))
    if fmt is None or len(payload) % itemsize:
        raise FormatError(
            f"cannot decode array typecode {typecode!r} itemsize {itemsize}")
    values = struct.unpack(f"<{len(payload) // itemsize}{fmt}", payload)
    return array(typecode, values)


def _decode(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == b"N":
        return NULL
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(reader.take(8))[0]
    if tag == b"I":
        return int(reader.take_sized().decode("ascii"))
    if tag == b"f":
        return _F64.unpack(reader.take(8))[0]
    if tag == b"s":
        return reader.take_sized().decode("utf-8")
    if tag == b"b":
        return reader.take_sized()
    if tag == b"t":
        return _dt.datetime.fromisoformat(reader.take_sized().decode("ascii"))
    if tag == b"A":
        return _decode_array(reader)
    if tag == b"L":
        (count,) = _U32.unpack(reader.take(4))
        return [_decode(reader) for _ in range(count)]
    if tag == b"u":
        (count,) = _U32.unpack(reader.take(4))
        return tuple(_decode(reader) for _ in range(count))
    if tag == b"M":
        (count,) = _U32.unpack(reader.take(4))
        return {_decode(reader): _decode(reader) for _ in range(count)}
    if tag == b"y":
        return DataType(reader.take_sized().decode("ascii"))
    if tag == b"P":
        dtype = _decode(reader)
        return PlainColumn(_decode(reader), dtype)
    if tag == b"D":
        dtype = _decode(reader)
        return DictColumn(_decode(reader), _decode(reader), dtype)
    if tag == b"R":
        dtype = _decode(reader)
        return RleColumn(_decode(reader), _decode(reader), _decode(reader),
                         _decode(reader), dtype)
    if tag == b"V":
        dtype = _decode(reader)
        return DeltaColumn(_decode(reader), _decode(reader), dtype)
    if tag == b"Z":
        fields = _decode(reader)
        zone = ZoneStats(fields[0])
        (zone.rows, zone.null_count, zone.has_null, zone.minimum,
         zone.maximum, zone.cmp_min, zone.cmp_max, zone.kind,
         zone.int_sum) = fields
        return zone
    if tag == b"S":
        base = _decode(reader)
        rows = _decode(reader)
        tombstones = _decode(reader)
        columns = _decode(reader)
        masks = _decode(reader)
        zones = _decode(reader)
        return SealedSegment(base, rows, columns, masks, zones, tombstones)
    if tag == b"c":
        fields = _decode(reader)
        return ColumnStatistics(column=fields[0], dtype=fields[1],
                                row_count=fields[2], null_count=fields[3],
                                distinct_count=fields[4], minimum=fields[5],
                                maximum=fields[6], histogram_bounds=fields[7],
                                mcvs=fields[8])
    if tag == b"j":
        fields = _decode(reader)
        return TableStatistics(table=fields[0], row_count=fields[1],
                               columns=fields[2],
                               modification_counter=fields[3])
    raise FormatError(f"unknown tag {tag!r} at offset {reader.offset - 1}")


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`; raises :class:`FormatError` on
    malformed input and on trailing garbage."""
    reader = _Reader(bytes(data))
    value = _decode(reader)
    if reader.offset != len(reader.data):
        raise FormatError(
            f"{len(reader.data) - reader.offset} trailing bytes after value")
    return value


# ---------------------------------------------------------------------------
# Storage-state adapters
# ---------------------------------------------------------------------------

def storage_state(storage: Any) -> dict[str, Any]:
    """A codec-encodable snapshot of a table's row store.

    For a :class:`~repro.engine.storage.ColumnStore` the snapshot keeps
    the sealed segments *as objects* (the codec serializes their
    encodings and zone maps directly) plus the raw tail buffers; for a
    :class:`~repro.engine.storage.RowStore`, the slot list.  The caller
    must hold the owning table's write lock — the state shares buffers
    with the live store until it is encoded.
    """
    return storage.checkpoint_state()


def storage_from_state(state: dict[str, Any], columns: Any) -> Any:
    """Rebuild a storage engine from :func:`storage_state` output."""
    from ..engine.storage import make_storage

    storage = make_storage(state["kind"], columns)
    storage.restore_state(state)
    return storage


def statistics_state(statistics: dict[str, TableStatistics]) -> dict[str, Any]:
    """The catalog's ANALYZE snapshots as one encodable mapping."""
    return dict(statistics)


def statistics_from_state(state: dict[str, Any]) -> dict[str, TableStatistics]:
    return dict(state)
