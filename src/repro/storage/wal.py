"""A CRC-framed append-only write-ahead log.

Each record is one frame::

    <III  = magic, payload length, crc32(payload)   (12-byte header)
    payload                                          (opaque bytes)

Replay (:meth:`WriteAheadLog.replay`) yields payloads in write order and
**stops at the first frame that fails validation** — bad magic, a length
that runs past end-of-file, or a CRC mismatch.  A crash can only truncate
or tear the final frame (the OS appends within a single ``write`` call
in order), so everything before the first bad frame is exactly the set
of records whose bytes reached the file.  Recovery is therefore a pure
function of the file's contents; no repair pass, no ambiguity.

Durability levels: by default appends go through the buffered file
object and are ``flush``\\ ed per record (crash-of-*process* safe, which
is what the tests exercise by truncating the file at arbitrary offsets);
``fsync=True`` adds an ``os.fsync`` per append for crash-of-*machine*
safety at the usual cost.  Checkpoint truncation always syncs — a WAL
that claims to be empty must actually be empty before the checkpoint
manifest that supersedes it is allowed to land (see
:mod:`repro.engine.durable` for the ordering argument).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

from ..telemetry.metrics import METRICS

_HEADER = struct.Struct("<III")
_MAGIC = 0x57414C09          # "WAL\t"

# Cached metric handles (appends themselves are counted one layer up,
# in DurabilityManager, where the logical op/table is known).
_FSYNCS = METRICS.counter("wal.fsyncs")
_REPLAYED = METRICS.counter("wal.frames_replayed")


@dataclass(frozen=True)
class WalRecord:
    """One replayed frame: its payload and the file offset of the *next*
    frame (i.e. where the log would be truncated to keep this record as
    the last one — the crash tests use it to compute tear points)."""

    payload: bytes
    end_offset: int


class WriteAheadLog:
    """Append/replay/truncate over a single log file.

    The instance owns an exclusive append handle from construction to
    :meth:`close`; replay uses an independent read handle so it can run
    against a live log (recovery, twins in tests).
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = False):
        self.path = os.fspath(path)
        self.fsync = fsync
        self._file = open(self.path, "ab")

    # -- writing ----------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Write one frame; returns the file offset after the frame."""
        frame = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload))
        handle = self._file
        handle.write(frame + payload)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
            _FSYNCS.inc()
        return handle.tell()

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        _FSYNCS.inc()

    def truncate(self) -> None:
        """Empty the log (after a successful checkpoint).  Always synced:
        the checkpoint's manifest rename must not become visible while
        stale WAL frames could still replay on top of it."""
        handle = self._file
        handle.flush()
        handle.truncate(0)
        handle.seek(0)
        os.fsync(handle.fileno())

    # -- reading ----------------------------------------------------------

    def replay(self) -> Iterator[WalRecord]:
        return replay_file(self.path)

    def size(self) -> int:
        self._file.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.close()
        return None


def replay_file(path: str | os.PathLike) -> Iterator[WalRecord]:
    """Yield valid frames from ``path`` in order, stopping at the first
    torn/corrupt frame (or cleanly at end-of-file).  A missing file
    replays as empty — a database checkpointed and cleanly closed may
    have no WAL at all."""
    try:
        handle = open(os.fspath(path), "rb")
    except FileNotFoundError:
        return
    with handle:
        offset = 0
        while True:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return                          # clean EOF or torn header
            magic, length, crc = _HEADER.unpack(header)
            if magic != _MAGIC:
                return
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return                          # torn or corrupt payload
            offset += _HEADER.size + length
            _REPLAYED.inc()
            yield WalRecord(payload, offset)
