"""Point-to-trixel lookups: the core HTM indexing operation.

``lookup_id(ra, dec, depth)`` descends the triangular mesh from the
octahedron face containing the point down to ``depth`` levels,
returning the 64-bit trixel id.  The SkyServer stores 20-deep ids, at
which level "individual triangles are less than 0.1 arcseconds on a
side" (paper §9.1.4), and indexes them with an ordinary B-tree because
every descendant of a trixel falls in a contiguous id range.
"""

from __future__ import annotations

from typing import Sequence

from .trixel import Trixel, htm_level, root_trixels, trixel_from_id
from .vectors import radec_to_unit

#: The SkyServer's storage depth for HTM ids.
DEFAULT_DEPTH = 20


def lookup_vector(vector: Sequence[float], depth: int = DEFAULT_DEPTH) -> int:
    """The HTM id of the depth-``depth`` trixel containing ``vector``."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    current: Trixel | None = None
    for trixel in root_trixels():
        if trixel.contains(vector):
            current = trixel
            break
    if current is None:
        # Numerical corner case (point exactly on shared vertices/edges):
        # fall back to the root whose corners are closest.
        from .vectors import angular_distance, centroid

        current = min(root_trixels(),
                      key=lambda t: angular_distance(centroid(t.corners), vector))
    for _level in range(depth):
        children = current.children()
        chosen = None
        for child in children:
            if child.contains(vector):
                chosen = child
                break
        if chosen is None:
            from .vectors import angular_distance, centroid

            chosen = min(children,
                         key=lambda t: angular_distance(centroid(t.corners), vector))
        current = chosen
    return current.htm_id


def lookup_id(ra: float, dec: float, depth: int = DEFAULT_DEPTH) -> int:
    """The HTM id of the trixel containing (ra, dec), both in degrees."""
    return lookup_vector(radec_to_unit(ra, dec), depth)


def id_range_at_depth(htm_id: int, depth: int) -> tuple[int, int]:
    """The inclusive range of depth-``depth`` ids descending from ``htm_id``.

    This is the property that makes a B-tree on HTM ids a spatial index:
    "all the HTM IDs within the triangle 6,1,2,2 have HTM IDs that are
    between 6,1,2,2 and 6,1,2,3" (paper §9.1.4).
    """
    level = htm_level(htm_id)
    if depth < level:
        raise ValueError(f"target depth {depth} is shallower than id level {level}")
    shift = 2 * (depth - level)
    low = htm_id << shift
    high = ((htm_id + 1) << shift) - 1
    return low, high


def parent_id(htm_id: int, levels: int = 1) -> int:
    """The ancestor id ``levels`` levels above ``htm_id``."""
    level = htm_level(htm_id)
    if levels > level:
        raise ValueError(f"id {htm_id} has only {level} levels above the root")
    return htm_id >> (2 * levels)


def trixel(htm_id: int) -> Trixel:
    """The trixel geometry for an id (corner vectors, level, name)."""
    return trixel_from_id(htm_id)


def triangle_side_arcsec(depth: int) -> float:
    """Approximate side length (arcseconds) of a depth-``depth`` trixel.

    Level 0 sides are 90 degrees; each level halves the side, so 20-deep
    triangles are well under the paper's quoted 0.1 arcsecond... at
    depth 20 the side is 90 * 3600 / 2**20 ≈ 0.31", the same order of
    magnitude as the paper's figure.
    """
    return 90.0 * 3600.0 / (2 ** depth)
