"""Hierarchical Triangular Mesh (HTM) spatial indexing, built from scratch.

The Johns Hopkins HTM code was "added to SQL Server" as an extended
stored procedure (paper §9.1.4); here it is an ordinary Python package
whose ids are stored in BIGINT columns and range-scanned through the
engine's B-tree indices — the same B-tree-over-64-bit-ids design the
paper describes.
"""

from .cover import HtmRange, cover, cover_circle, depth_for_radius, merge_ranges, ranges_contain
from .mesh import (DEFAULT_DEPTH, id_range_at_depth, lookup_id, lookup_vector,
                   parent_id, triangle_side_arcsec, trixel)
from .regions import Circle, Convex, Halfspace, Markup, Polygon, RectangleEq, Region
from .trixel import Trixel, htm_id_to_name, htm_level, htm_name_to_id, root_trixels
from .vectors import (ARCMIN_PER_DEGREE, ARCSEC_PER_DEGREE, angular_distance,
                      angular_distance_radec, arcmin_between, cross, dot, midpoint,
                      normalize, radec_to_unit, unit_to_radec)

__all__ = [
    "DEFAULT_DEPTH",
    "lookup_id",
    "lookup_vector",
    "id_range_at_depth",
    "parent_id",
    "trixel",
    "triangle_side_arcsec",
    "Trixel",
    "root_trixels",
    "htm_level",
    "htm_id_to_name",
    "htm_name_to_id",
    "HtmRange",
    "cover",
    "cover_circle",
    "depth_for_radius",
    "merge_ranges",
    "ranges_contain",
    "Region",
    "Circle",
    "Halfspace",
    "Convex",
    "Polygon",
    "RectangleEq",
    "Markup",
    "radec_to_unit",
    "unit_to_radec",
    "angular_distance",
    "angular_distance_radec",
    "arcmin_between",
    "normalize",
    "dot",
    "cross",
    "midpoint",
    "ARCMIN_PER_DEGREE",
    "ARCSEC_PER_DEGREE",
]
