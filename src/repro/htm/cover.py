"""HTM covers: turning a region into trixel-id ranges.

``spHTM_Cover(<area>)`` "returns a table containing a row with start
and end of an HTM triangle.  The union of these triangles covers the
specified area.  One can join this table with the PhotoObj table to get
a spatial subset of photo objects" (paper §9.1.4).  The cover here is a
superset cover: every object inside the region is guaranteed to fall in
one of the returned ranges; callers re-check the exact geometric
predicate on the candidate rows (as the SkyServer's higher-level
functions do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .mesh import DEFAULT_DEPTH, id_range_at_depth
from .regions import Circle, Markup, Region
from .trixel import Trixel, root_trixels


@dataclass(frozen=True)
class HtmRange:
    """One inclusive range of storage-depth HTM ids."""

    low: int
    high: int

    def contains(self, htm_id: int) -> bool:
        return self.low <= htm_id <= self.high

    def __iter__(self) -> Iterator[int]:
        return iter((self.low, self.high))


def cover(region: Region, *, cover_depth: int = 8,
          storage_depth: int = DEFAULT_DEPTH) -> list[HtmRange]:
    """Compute a superset cover of ``region`` as storage-depth id ranges.

    ``cover_depth`` bounds the recursion: trixels still classified
    PARTIAL at that depth are included whole.  Deeper covers are tighter
    but produce more ranges; 8 levels (trixels ≈ 20 arcminutes on a
    side) is a good default for arcminute-scale searches.
    """
    if cover_depth < 0 or storage_depth < cover_depth:
        raise ValueError("need 0 <= cover_depth <= storage_depth")
    ranges: list[HtmRange] = []

    def visit(trixel: Trixel) -> None:
        markup = region.classify(trixel)
        if markup is Markup.OUTSIDE:
            return
        if markup is Markup.INSIDE or trixel.level >= cover_depth:
            low, high = id_range_at_depth(trixel.htm_id, storage_depth)
            ranges.append(HtmRange(low, high))
            return
        for child in trixel.children():
            visit(child)

    for root in root_trixels():
        visit(root)
    return merge_ranges(ranges)


def cover_circle(ra: float, dec: float, radius_arcmin: float, *,
                 cover_depth: int | None = None,
                 storage_depth: int = DEFAULT_DEPTH) -> list[HtmRange]:
    """Cover of a circular cap; picks a cover depth matched to the radius."""
    if cover_depth is None:
        cover_depth = depth_for_radius(radius_arcmin)
    return cover(Circle(ra, dec, radius_arcmin), cover_depth=cover_depth,
                 storage_depth=storage_depth)


def depth_for_radius(radius_arcmin: float) -> int:
    """A cover depth whose trixels are comparable in size to the search radius."""
    side_arcmin = 90.0 * 60.0
    depth = 0
    while side_arcmin > max(radius_arcmin, 0.05) and depth < 14:
        side_arcmin /= 2.0
        depth += 1
    return depth


def merge_ranges(ranges: Iterable[HtmRange]) -> list[HtmRange]:
    """Sort and merge overlapping or adjacent id ranges."""
    ordered = sorted(ranges, key=lambda r: (r.low, r.high))
    merged: list[HtmRange] = []
    for current in ordered:
        if merged and current.low <= merged[-1].high + 1:
            previous = merged[-1]
            merged[-1] = HtmRange(previous.low, max(previous.high, current.high))
        else:
            merged.append(current)
    return merged


def ranges_contain(ranges: Sequence[HtmRange], htm_id: int) -> bool:
    """Binary-search membership test of an id against a sorted range list."""
    low, high = 0, len(ranges) - 1
    while low <= high:
        middle = (low + high) // 2
        candidate = ranges[middle]
        if htm_id < candidate.low:
            high = middle - 1
        elif htm_id > candidate.high:
            low = middle + 1
        else:
            return True
    return False
