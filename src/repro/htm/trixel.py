"""HTM trixels: the triangles of the Hierarchical Triangular Mesh.

HTM "inscribes the celestial sphere within an octahedron and projects
each celestial point onto the surface of the octahedron ...  It then
hierarchically decomposes each face with a recursive sequence of
triangles — each level of the recursion divides each triangle into 4
sub-triangles" (paper §9.1.4, Figure 8).  A trixel is one such
triangle, identified by a 64-bit integer whose two leading payload bits
select the hemisphere, the next two bits the octahedron face, and each
further pair of bits one of the four children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from .vectors import Vector, centroid, cross, dot, midpoint

#: Octahedron vertices (the standard Johns Hopkins HTM layout).
_V0: Vector = (0.0, 0.0, 1.0)
_V1: Vector = (1.0, 0.0, 0.0)
_V2: Vector = (0.0, 1.0, 0.0)
_V3: Vector = (-1.0, 0.0, 0.0)
_V4: Vector = (0.0, -1.0, 0.0)
_V5: Vector = (0.0, 0.0, -1.0)

#: Root trixels: name, id (level-0 ids are 8..15 so every id's bit length
#: encodes its level), and corner vectors in counter-clockwise order.
ROOT_TRIXELS: list[tuple[str, int, tuple[Vector, Vector, Vector]]] = [
    ("S0", 8, (_V1, _V5, _V2)),
    ("S1", 9, (_V2, _V5, _V3)),
    ("S2", 10, (_V3, _V5, _V4)),
    ("S3", 11, (_V4, _V5, _V1)),
    ("N0", 12, (_V1, _V0, _V4)),
    ("N1", 13, (_V4, _V0, _V3)),
    ("N2", 14, (_V3, _V0, _V2)),
    ("N3", 15, (_V2, _V0, _V1)),
]

#: A tiny tolerance so points that lie exactly on a shared edge are
#: accepted by one of the adjacent trixels rather than rejected by both.
_EDGE_EPSILON = -1.0e-12


@dataclass(frozen=True)
class Trixel:
    """One HTM triangle: its 64-bit id, level and corner vectors."""

    htm_id: int
    level: int
    corners: tuple[Vector, Vector, Vector]

    @property
    def name(self) -> str:
        return htm_id_to_name(self.htm_id)

    def contains(self, vector: Sequence[float]) -> bool:
        """True when ``vector`` lies inside (or on the boundary of) the trixel."""
        v0, v1, v2 = self.corners
        return (dot(cross(v0, v1), vector) >= _EDGE_EPSILON
                and dot(cross(v1, v2), vector) >= _EDGE_EPSILON
                and dot(cross(v2, v0), vector) >= _EDGE_EPSILON)

    def children(self) -> tuple["Trixel", "Trixel", "Trixel", "Trixel"]:
        """The four child trixels one level deeper (Figure 8's subdivision)."""
        v0, v1, v2 = self.corners
        w0 = midpoint(v1, v2)
        w1 = midpoint(v0, v2)
        w2 = midpoint(v0, v1)
        base = self.htm_id << 2
        next_level = self.level + 1
        return (
            Trixel(base | 0, next_level, (v0, w2, w1)),
            Trixel(base | 1, next_level, (v1, w0, w2)),
            Trixel(base | 2, next_level, (v2, w1, w0)),
            Trixel(base | 3, next_level, (w0, w1, w2)),
        )

    def bounding_cap(self) -> tuple[Vector, float]:
        """A (center, angular-radius-in-degrees) cap containing the trixel."""
        from .vectors import angular_distance

        center = centroid(self.corners)
        radius = max(angular_distance(center, corner) for corner in self.corners)
        return center, radius

    def area_steradians(self) -> float:
        """Spherical area via Girard's theorem (used by tests for iso-area checks)."""
        import math

        v0, v1, v2 = self.corners
        a = math.acos(max(-1.0, min(1.0, dot(v1, v2))))
        b = math.acos(max(-1.0, min(1.0, dot(v0, v2))))
        c = math.acos(max(-1.0, min(1.0, dot(v0, v1))))
        s = (a + b + c) / 2.0
        tangent = math.tan(s / 2) * math.tan((s - a) / 2) * math.tan((s - b) / 2) * math.tan((s - c) / 2)
        return 4.0 * math.atan(math.sqrt(max(0.0, tangent)))


def root_trixels() -> Iterator[Trixel]:
    """The eight level-0 trixels of the octahedron."""
    for _name, htm_id, corners in ROOT_TRIXELS:
        yield Trixel(htm_id, 0, corners)


def htm_level(htm_id: int) -> int:
    """The subdivision level encoded in an HTM id."""
    if htm_id < 8:
        raise ValueError(f"invalid HTM id {htm_id}: level-0 ids start at 8")
    bits = htm_id.bit_length()
    if bits % 2 != 0:
        raise ValueError(f"invalid HTM id {htm_id}: bit length must be even")
    return (bits - 4) // 2


def htm_id_to_name(htm_id: int) -> str:
    """Render an HTM id as its name, e.g. 0b1100 -> 'N0', 0b110011 -> 'N03'."""
    level = htm_level(htm_id)
    digits = []
    value = htm_id
    for _ in range(level):
        digits.append(str(value & 0b11))
        value >>= 2
    roots = {8: "S0", 9: "S1", 10: "S2", 11: "S3", 12: "N0", 13: "N1", 14: "N2", 15: "N3"}
    return roots[value] + "".join(reversed(digits))


def htm_name_to_id(name: str) -> int:
    """Parse an HTM name such as ``'N032'`` back to its integer id."""
    roots = {"S0": 8, "S1": 9, "S2": 10, "S3": 11, "N0": 12, "N1": 13, "N2": 14, "N3": 15}
    prefix = name[:2].upper()
    if prefix not in roots:
        raise ValueError(f"invalid HTM name {name!r}")
    value = roots[prefix]
    for digit in name[2:]:
        if digit not in "0123":
            raise ValueError(f"invalid HTM name {name!r}")
        value = (value << 2) | int(digit)
    return value


def trixel_from_id(htm_id: int) -> Trixel:
    """Reconstruct the trixel geometry for an HTM id by descending from its root."""
    level = htm_level(htm_id)
    root_id = htm_id >> (2 * level)
    current = None
    for trixel in root_trixels():
        if trixel.htm_id == root_id:
            current = trixel
            break
    if current is None:
        raise ValueError(f"invalid HTM id {htm_id}")
    for shift in range(level - 1, -1, -1):
        child_index = (htm_id >> (2 * shift)) & 0b11
        current = current.children()[child_index]
    return current
