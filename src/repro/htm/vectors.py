"""Spherical coordinate utilities.

The SkyServer stores three coordinate representations for every object
(paper §9.1.4): right ascension / declination in the J2000 system, the
(x, y, z) components of the corresponding unit vector (kept because
"the dot product and the Cartesian difference of two vectors are quick
ways to determine the arc-angle or distance between them"), and the
HTM index.  This module provides the conversions and the arc-angle
arithmetic shared by the HTM code, the Neighbors pre-computation and
the spatial search functions.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

Vector = tuple[float, float, float]

#: Arc-minutes and arc-seconds per degree, used throughout the spatial code.
ARCMIN_PER_DEGREE = 60.0
ARCSEC_PER_DEGREE = 3600.0


def radec_to_unit(ra_degrees: float, dec_degrees: float) -> Vector:
    """Convert (ra, dec) in degrees to a unit vector (x, y, z)."""
    ra = math.radians(ra_degrees)
    dec = math.radians(dec_degrees)
    cos_dec = math.cos(dec)
    return (cos_dec * math.cos(ra), cos_dec * math.sin(ra), math.sin(dec))


def unit_to_radec(vector: Sequence[float]) -> tuple[float, float]:
    """Convert a unit vector to (ra, dec) in degrees, with ra in [0, 360)."""
    x, y, z = vector
    ra = math.degrees(math.atan2(y, x))
    if ra < 0.0:
        ra += 360.0
    z_clamped = max(-1.0, min(1.0, z))
    dec = math.degrees(math.asin(z_clamped))
    return ra, dec


def normalize(vector: Sequence[float]) -> Vector:
    """Return the unit vector in the direction of ``vector``."""
    x, y, z = vector
    norm = math.sqrt(x * x + y * y + z * z)
    if norm == 0.0:
        raise ValueError("cannot normalize the zero vector")
    return (x / norm, y / norm, z / norm)


def dot(a: Sequence[float], b: Sequence[float]) -> float:
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def cross(a: Sequence[float], b: Sequence[float]) -> Vector:
    return (a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0])


def midpoint(a: Sequence[float], b: Sequence[float]) -> Vector:
    """The normalized midpoint of two unit vectors (an HTM edge split)."""
    return normalize((a[0] + b[0], a[1] + b[1], a[2] + b[2]))


def angular_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Arc angle between two unit vectors, in degrees.

    Uses the atan2 form, which stays accurate for very small separations
    where ``acos(dot)`` loses precision (sub-arcsecond HTM triangles).
    """
    cross_norm = math.sqrt(sum(component * component for component in cross(a, b)))
    return math.degrees(math.atan2(cross_norm, dot(a, b)))


def angular_distance_radec(ra1: float, dec1: float, ra2: float, dec2: float) -> float:
    """Arc angle in degrees between two (ra, dec) positions in degrees."""
    return angular_distance(radec_to_unit(ra1, dec1), radec_to_unit(ra2, dec2))


def arcmin_between(ra1: float, dec1: float, ra2: float, dec2: float) -> float:
    """Arc distance in arcminutes between two (ra, dec) positions."""
    return angular_distance_radec(ra1, dec1, ra2, dec2) * ARCMIN_PER_DEGREE


def centroid(vectors: Iterable[Sequence[float]]) -> Vector:
    """The normalized centroid of a set of unit vectors."""
    sum_x = sum_y = sum_z = 0.0
    count = 0
    for vector in vectors:
        sum_x += vector[0]
        sum_y += vector[1]
        sum_z += vector[2]
        count += 1
    if count == 0:
        raise ValueError("centroid of an empty set of vectors")
    return normalize((sum_x, sum_y, sum_z))
