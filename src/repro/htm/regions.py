"""Spherical regions accepted by ``spHTM_Cover``.

The paper's cover function accepts "either a circle (ra, dec, radius),
a half-space (the intersection of planes), or a polygon defined by a
sequence of points" (§9.1.4).  Each region here knows how to classify a
trixel as fully inside, fully outside, or partially overlapping, which
is all the cover algorithm needs; classification errs on the side of
"partial" so covers are always supersets of the true region.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

from .trixel import Trixel
from .vectors import (Vector, angular_distance, cross, dot, normalize,
                      radec_to_unit)


class Markup(enum.Enum):
    """Classification of a trixel against a region."""

    INSIDE = "inside"
    PARTIAL = "partial"
    OUTSIDE = "outside"


class Region:
    """Base class for spherical regions."""

    def contains(self, vector: Sequence[float]) -> bool:
        raise NotImplementedError

    def contains_radec(self, ra: float, dec: float) -> bool:
        return self.contains(radec_to_unit(ra, dec))

    def classify(self, trixel: Trixel) -> Markup:
        raise NotImplementedError


@dataclass(frozen=True)
class Halfspace(Region):
    """The set of points p with p·normal >= offset.

    ``offset`` is the cosine of the cap's angular radius; offset 0 is a
    hemisphere, positive offsets are caps smaller than a hemisphere.
    """

    normal: Vector
    offset: float

    @property
    def angular_radius(self) -> float:
        """Angular radius of the cap in degrees."""
        return math.degrees(math.acos(max(-1.0, min(1.0, self.offset))))

    def contains(self, vector: Sequence[float]) -> bool:
        return dot(self.normal, vector) >= self.offset - 1.0e-12

    def classify(self, trixel: Trixel) -> Markup:
        corners_inside = sum(1 for corner in trixel.corners if self.contains(corner))
        if corners_inside == 3:
            # The cap could still bulge out across an edge, so "inside" here is
            # only safe for covers (a superset); callers re-filter exact rows.
            return Markup.INSIDE
        if corners_inside > 0:
            return Markup.PARTIAL
        center, radius = trixel.bounding_cap()
        separation = angular_distance(center, self.normal)
        if separation > self.angular_radius + radius:
            return Markup.OUTSIDE
        return Markup.PARTIAL


@dataclass(frozen=True)
class Circle(Region):
    """A circular cap given by its center (ra, dec) and radius in arcminutes."""

    ra: float
    dec: float
    radius_arcmin: float

    def halfspace(self) -> Halfspace:
        radius_degrees = self.radius_arcmin / 60.0
        return Halfspace(radec_to_unit(self.ra, self.dec),
                         math.cos(math.radians(radius_degrees)))

    def contains(self, vector: Sequence[float]) -> bool:
        return self.halfspace().contains(vector)

    def classify(self, trixel: Trixel) -> Markup:
        return self.halfspace().classify(trixel)


@dataclass(frozen=True)
class Convex(Region):
    """An intersection of halfspaces (the paper's 'half-space' region)."""

    halfspaces: tuple[Halfspace, ...]

    def contains(self, vector: Sequence[float]) -> bool:
        return all(halfspace.contains(vector) for halfspace in self.halfspaces)

    def classify(self, trixel: Trixel) -> Markup:
        worst = Markup.INSIDE
        for halfspace in self.halfspaces:
            markup = halfspace.classify(trixel)
            if markup is Markup.OUTSIDE:
                return Markup.OUTSIDE
            if markup is Markup.PARTIAL:
                worst = Markup.PARTIAL
        return worst


@dataclass(frozen=True)
class Polygon(Region):
    """A convex spherical polygon given by its (ra, dec) vertices.

    Each edge contributes a great-circle halfspace; vertices must be
    listed counter-clockwise as seen from outside the sphere (the
    constructor flips the orientation automatically if needed).
    """

    vertices: tuple[tuple[float, float], ...]

    def _convex(self) -> Convex:
        points = [radec_to_unit(ra, dec) for ra, dec in self.vertices]
        if len(points) < 3:
            raise ValueError("a polygon needs at least three vertices")
        interior = normalize(tuple(sum(coords) for coords in zip(*points)))
        halfspaces = []
        count = len(points)
        for position in range(count):
            a = points[position]
            b = points[(position + 1) % count]
            normal = normalize(cross(a, b))
            if dot(normal, interior) < 0:
                normal = (-normal[0], -normal[1], -normal[2])
            halfspaces.append(Halfspace(normal, 0.0))
        return Convex(tuple(halfspaces))

    def contains(self, vector: Sequence[float]) -> bool:
        return self._convex().contains(vector)

    def classify(self, trixel: Trixel) -> Markup:
        return self._convex().classify(trixel)


@dataclass(frozen=True)
class RectangleEq(Region):
    """An (ra, dec) bounding box, used by the web interface's rectangular searches."""

    ra_min: float
    ra_max: float
    dec_min: float
    dec_max: float

    def contains(self, vector: Sequence[float]) -> bool:
        from .vectors import unit_to_radec

        ra, dec = unit_to_radec(vector)
        return self.contains_radec(ra, dec)

    def contains_radec(self, ra: float, dec: float) -> bool:
        if not (self.dec_min <= dec <= self.dec_max):
            return False
        if self.ra_min <= self.ra_max:
            return self.ra_min <= ra <= self.ra_max
        # The box wraps through ra = 0.
        return ra >= self.ra_min or ra <= self.ra_max

    def classify(self, trixel: Trixel) -> Markup:
        corners_inside = sum(1 for corner in trixel.corners if self.contains(corner))
        if corners_inside == 3:
            return Markup.INSIDE
        if corners_inside > 0:
            return Markup.PARTIAL
        center, radius = trixel.bounding_cap()
        box_center = radec_to_unit((self.ra_min + self.ra_max) / 2.0,
                                   (self.dec_min + self.dec_max) / 2.0)
        half_diagonal = max(
            angular_distance(box_center, radec_to_unit(self.ra_min, self.dec_min)),
            angular_distance(box_center, radec_to_unit(self.ra_max, self.dec_max)),
            angular_distance(box_center, radec_to_unit(self.ra_min, self.dec_max)),
            angular_distance(box_center, radec_to_unit(self.ra_max, self.dec_min)),
        )
        if angular_distance(center, box_center) > radius + half_diagonal:
            return Markup.OUTSIDE
        return Markup.PARTIAL
