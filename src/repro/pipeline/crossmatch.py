"""Cross-correlation with external surveys.

"The pipeline tries to correlate each object with objects in other
surveys: United States Naval Observatory [USNO], Röntgen Satellite
[ROSAT], Faint Images of the Radio Sky at Twenty-centimeters [FIRST],
and others.  Successful correlations are recorded in a set of
relationship tables." (paper §9)

The external catalogs are synthetic: for each SDSS detection the
matcher decides, with class- and brightness-dependent probabilities,
whether a counterpart exists, and if so synthesises that counterpart's
measurements (astrometric magnitudes for USNO, X-ray count rates for
ROSAT, radio fluxes for FIRST) around plausible values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..schema.flags import PhotoFlags, PhotoType


@dataclass
class CrossMatchOutput:
    """Rows for the three relationship tables."""

    usno: list[dict] = field(default_factory=list)
    rosat: list[dict] = field(default_factory=list)
    first: list[dict] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        return {"USNO": len(self.usno), "ROSAT": len(self.rosat), "FIRST": len(self.first)}


@dataclass
class MatchRates:
    """Probabilities that a counterpart exists in each external survey."""

    usno_bright_star: float = 0.65      # USNO is an astrometric star catalog
    usno_other: float = 0.02
    rosat_qso_like: float = 0.12        # X-ray bright AGN
    rosat_other: float = 0.002
    first_qso_like: float = 0.10        # radio-loud AGN
    first_galaxy: float = 0.015
    first_other: float = 0.001


class CrossMatcher:
    """Matches PhotoObj detections against the synthetic external catalogs."""

    def __init__(self, rng: Optional[random.Random] = None,
                 rates: Optional[MatchRates] = None):
        self.rng = rng or random.Random(0)
        self.rates = rates or MatchRates()
        self._usno_counter = 0
        self._rosat_counter = 0
        self._first_counter = 0

    def match(self, photo_rows: Sequence[dict]) -> CrossMatchOutput:
        output = CrossMatchOutput()
        for row in photo_rows:
            if not row["flags"] & int(PhotoFlags.PRIMARY):
                continue
            self._match_usno(row, output)
            self._match_rosat(row, output)
            self._match_first(row, output)
        return output

    # -- per-survey matching ---------------------------------------------------

    def _is_quasar_like(self, row: dict) -> bool:
        return (row["type"] == int(PhotoType.STAR)
                and (row["modelMag_u"] - row["modelMag_g"]) < 0.5)

    def _match_usno(self, row: dict, output: CrossMatchOutput) -> None:
        rng = self.rng
        is_bright_star = row["type"] == int(PhotoType.STAR) and row["psfMag_r"] < 19.0
        probability = self.rates.usno_bright_star if is_bright_star else self.rates.usno_other
        if rng.random() >= probability:
            return
        self._usno_counter += 1
        output.usno.append({
            "objID": row["objID"],
            "usnoID": 1000000000 + self._usno_counter,
            "distance": abs(rng.gauss(0.3, 0.2)),
            "bMag": row["psfMag_g"] + rng.gauss(0.3, 0.3),
            "rMag": row["psfMag_r"] + rng.gauss(0.1, 0.3),
            "properMotion": abs(rng.gauss(8.0, 12.0)),
            "properMotionAngle": rng.uniform(0.0, 360.0),
        })

    def _match_rosat(self, row: dict, output: CrossMatchOutput) -> None:
        rng = self.rng
        probability = (self.rates.rosat_qso_like if self._is_quasar_like(row)
                       else self.rates.rosat_other)
        if rng.random() >= probability:
            return
        self._rosat_counter += 1
        output.rosat.append({
            "objID": row["objID"],
            "rosatID": 2000000000 + self._rosat_counter,
            "distance": abs(rng.gauss(8.0, 5.0)),
            "countRate": abs(rng.gauss(0.05, 0.04)),
            "countRateErr": abs(rng.gauss(0.01, 0.005)),
            "hardnessRatio1": rng.uniform(-1.0, 1.0),
            "hardnessRatio2": rng.uniform(-1.0, 1.0),
            "exposure": abs(rng.gauss(400.0, 150.0)),
        })

    def _match_first(self, row: dict, output: CrossMatchOutput) -> None:
        rng = self.rng
        if self._is_quasar_like(row):
            probability = self.rates.first_qso_like
        elif row["type"] == int(PhotoType.GALAXY):
            probability = self.rates.first_galaxy
        else:
            probability = self.rates.first_other
        if rng.random() >= probability:
            return
        self._first_counter += 1
        peak_flux = abs(rng.gauss(3.0, 5.0)) + 0.75
        output.first.append({
            "objID": row["objID"],
            "firstID": 3000000000 + self._first_counter,
            "distance": abs(rng.gauss(1.0, 0.8)),
            "peakFlux": peak_flux,
            "integratedFlux": peak_flux * abs(rng.gauss(1.3, 0.3)),
            "rms": abs(rng.gauss(0.15, 0.05)),
            "majorAxis": abs(rng.gauss(4.0, 2.0)),
            "minorAxis": abs(rng.gauss(2.5, 1.5)),
        })
