"""Synthetic SDSS survey and processing pipeline (the data substitute)."""

from .crossmatch import CrossMatcher, CrossMatchOutput, MatchRates
from .csvexport import export_tables, read_csv, write_csv
from .deblend import (DEFAULT_BLEND_FRACTION, deblend_detections, deblend_family,
                      primary_fraction, resolve_primaries)
from .geometry import (FieldGeometry, SurveyGeometry, make_geometry,
                       overlap_fraction)
from .photometric import (FramesPipeline, decode_obj_id, encode_field_id,
                          encode_obj_id, encode_spec_obj_id)
from .population import (CLASS_FRACTIONS, OBJECTS_PER_SQ_DEG, PlantedPopulations,
                         TrueObject, synthesize_population)
from .spectroscopic import SpectroscopicOutput, SpectroscopicPipeline
from .survey import (EDR_FIELD_COUNT, PipelineOutput, SurveyConfig,
                     SyntheticSurvey)
from .targeting import (FIBERS_PER_PLATE, SCIENCE_FIBERS_PER_PLATE,
                        TARGET_FRACTION, PlateDesign, Target, design_plates,
                        design_special_plate, select_targets)

__all__ = [
    "SyntheticSurvey",
    "SurveyConfig",
    "PipelineOutput",
    "EDR_FIELD_COUNT",
    "FieldGeometry",
    "SurveyGeometry",
    "make_geometry",
    "overlap_fraction",
    "TrueObject",
    "PlantedPopulations",
    "synthesize_population",
    "CLASS_FRACTIONS",
    "OBJECTS_PER_SQ_DEG",
    "FramesPipeline",
    "encode_obj_id",
    "decode_obj_id",
    "encode_field_id",
    "encode_spec_obj_id",
    "deblend_family",
    "deblend_detections",
    "resolve_primaries",
    "primary_fraction",
    "DEFAULT_BLEND_FRACTION",
    "Target",
    "PlateDesign",
    "select_targets",
    "design_plates",
    "design_special_plate",
    "TARGET_FRACTION",
    "FIBERS_PER_PLATE",
    "SCIENCE_FIBERS_PER_PLATE",
    "SpectroscopicPipeline",
    "SpectroscopicOutput",
    "CrossMatcher",
    "CrossMatchOutput",
    "MatchRates",
    "write_csv",
    "read_csv",
    "export_tables",
]
