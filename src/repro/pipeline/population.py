"""Population synthesis: the "true sky" behind the synthetic survey.

The generator draws stars, galaxies, quasars and moving objects with
magnitude and colour distributions close enough to the real sky that
the paper's data-mining queries are meaningful, and plants the specific
populations the paper's worked examples depend on:

* a cluster of unsaturated galaxies within 1 arcminute of
  (ra, dec) = (185°, −0.5°), so Query 1 returns a handful of rows;
* a few very bright, saturated objects near the same spot (the rows
  Query 1 must exclude);
* slow-moving asteroids whose row/column velocities satisfy
  50 ≤ rowv² + colv² ≤ 1000 (Query 15A);
* elongated red/green detection pairs in adjacent fields for the
  fast-moving NEO query (Query 15B), including one degenerate pair;
* quasars with the blue colours the colour-cut scan queries select.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from .geometry import SurveyGeometry

#: Mean density of *unique* catalogued sources per square degree.  The Early
#: Data Release holds ≈30 000 catalog rows per square degree (14 M rows over
#: ~460 square degrees); each unique source yields ≈1.3 rows once duplicate
#: detections and deblended children are counted, so the true-sky density is
#: set to ≈23 000 per square degree.
OBJECTS_PER_SQ_DEG = 23000.0

#: Class mix of the detected population.
#: Asteroids are over-represented relative to the real sky (~1e-4) so the
#: moving-object query returns a usable sample at reproduction scale; the
#: substitution is recorded in DESIGN.md / EXPERIMENTS.md.
CLASS_FRACTIONS = {
    "galaxy": 0.566,
    "star": 0.405,
    "qso": 0.025,
    "asteroid": 0.004,
}


@dataclass
class TrueObject:
    """One astrophysical source before it is "observed" by the pipeline."""

    kind: str                      # 'star', 'galaxy', 'qso' or 'asteroid'
    ra: float
    dec: float
    mag_r: float                   # true r-band magnitude
    colors: dict[str, float]       # true magnitude in each band
    redshift: float = 0.0
    size_arcsec: float = 0.0       # effective radius (galaxies)
    axis_ratio: float = 1.0        # b/a
    position_angle: float = 0.0    # degrees
    is_de_vaucouleurs: bool = False
    has_emission_lines: bool = False
    rowv: float = 0.0              # row velocity (moving objects)
    colv: float = 0.0              # column velocity (moving objects)
    extinction_r: float = 0.05
    tag: str = ""                  # planted-population marker

    @property
    def ellipticity(self) -> float:
        return 1.0 - self.axis_ratio


@dataclass
class PlantedPopulations:
    """Knobs for the populations the paper's worked examples rely on."""

    q1_cluster_center: tuple[float, float] = (185.0, -0.5)
    q1_cluster_galaxies: int = 14
    q1_saturated_objects: int = 4
    q1_cluster_radius_arcmin: float = 0.9
    neo_pairs: int = 3
    neo_degenerate_pairs: int = 1
    high_extinction_fraction: float = 0.08
    high_extinction_value: float = 0.25


def synthesize_population(geometry: SurveyGeometry, *,
                          rng: Optional[random.Random] = None,
                          density_per_sq_deg: float = OBJECTS_PER_SQ_DEG,
                          planted: Optional[PlantedPopulations] = None) -> list[TrueObject]:
    """Draw the full true-sky population for the survey footprint."""
    rng = rng or random.Random(0)
    planted = planted or PlantedPopulations()
    area = geometry.total_area_sq_deg
    expected = density_per_sq_deg * area
    count = max(50, _poisson(rng, expected))
    objects: list[TrueObject] = []
    for _ in range(count):
        ra = rng.uniform(geometry.ra_min, geometry.ra_max)
        dec = rng.uniform(geometry.dec_min, geometry.dec_max)
        kind = _choose_class(rng)
        objects.append(_draw_object(rng, kind, ra, dec, planted))
    objects.extend(_plant_q1_cluster(rng, planted))
    objects.extend(_plant_neo_pairs(rng, geometry, planted))
    return objects


# ---------------------------------------------------------------------------
# Class and magnitude sampling
# ---------------------------------------------------------------------------

def _choose_class(rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for kind, fraction in CLASS_FRACTIONS.items():
        cumulative += fraction
        if roll < cumulative:
            return kind
    return "galaxy"


def _sample_magnitude(rng: random.Random, bright: float = 14.0, faint: float = 23.0,
                      slope: float = 0.3) -> float:
    """Draw from the euclidean-ish number-magnitude law N(<m) ∝ 10^(slope·m)."""
    u = rng.random()
    log_bright = 10 ** (slope * bright)
    log_faint = 10 ** (slope * faint)
    return math.log10(log_bright + u * (log_faint - log_bright)) / slope


def _stellar_colors(rng: random.Random, mag_r: float) -> dict[str, float]:
    """Colours drawn along a simplified stellar locus."""
    g_r = rng.gauss(0.62, 0.30)
    u_g = 1.0 + 1.5 * max(0.0, g_r) + rng.gauss(0.0, 0.15)
    r_i = 0.4 * g_r + rng.gauss(0.0, 0.08)
    i_z = 0.2 * g_r + rng.gauss(0.0, 0.08)
    return _colors_from_offsets(mag_r, u_g, g_r, r_i, i_z)


def _galaxy_colors(rng: random.Random, mag_r: float, is_de_vaucouleurs: bool) -> dict[str, float]:
    if is_de_vaucouleurs:
        # Red, early-type galaxies.
        g_r = rng.gauss(0.85, 0.12)
        u_g = rng.gauss(1.75, 0.20)
    else:
        # Blue, star-forming disks.
        g_r = rng.gauss(0.55, 0.18)
        u_g = rng.gauss(1.25, 0.25)
    r_i = rng.gauss(0.40, 0.10)
    i_z = rng.gauss(0.25, 0.10)
    return _colors_from_offsets(mag_r, u_g, g_r, r_i, i_z)


def _quasar_colors(rng: random.Random, mag_r: float) -> dict[str, float]:
    """Quasars sit blueward of the stellar locus in u−g (the colour-cut queries)."""
    u_g = rng.gauss(0.10, 0.12)
    g_r = rng.gauss(0.20, 0.12)
    r_i = rng.gauss(0.15, 0.10)
    i_z = rng.gauss(0.05, 0.10)
    return _colors_from_offsets(mag_r, u_g, g_r, r_i, i_z)


def _asteroid_colors(rng: random.Random, mag_r: float) -> dict[str, float]:
    return _colors_from_offsets(mag_r, rng.gauss(1.5, 0.2), rng.gauss(0.5, 0.1),
                                rng.gauss(0.2, 0.1), rng.gauss(0.1, 0.1))


def _colors_from_offsets(mag_r: float, u_g: float, g_r: float,
                         r_i: float, i_z: float) -> dict[str, float]:
    mag_g = mag_r + g_r
    return {
        "u": mag_g + u_g,
        "g": mag_g,
        "r": mag_r,
        "i": mag_r - r_i,
        "z": mag_r - r_i - i_z,
    }


def _draw_object(rng: random.Random, kind: str, ra: float, dec: float,
                 planted: PlantedPopulations) -> TrueObject:
    mag_r = _sample_magnitude(rng)
    extinction = 0.03 + abs(rng.gauss(0.0, 0.03))
    if rng.random() < planted.high_extinction_fraction:
        extinction = planted.high_extinction_value + abs(rng.gauss(0.0, 0.05))
    if kind == "star":
        return TrueObject(kind, ra, dec, mag_r, _stellar_colors(rng, mag_r),
                          extinction_r=extinction)
    if kind == "qso":
        redshift = abs(rng.gauss(1.3, 0.7))
        return TrueObject(kind, ra, dec, mag_r, _quasar_colors(rng, mag_r),
                          redshift=redshift, has_emission_lines=True,
                          extinction_r=extinction)
    if kind == "asteroid":
        # Slow-moving solar-system objects: 50 <= rowv^2 + colv^2 <= 1000
        # in the paper's velocity units, with both components non-negative.
        speed = math.sqrt(rng.uniform(60.0, 950.0))
        angle = rng.uniform(0.05, math.pi / 2 - 0.05)
        return TrueObject(kind, ra, dec, min(mag_r, 21.0), _asteroid_colors(rng, mag_r),
                          rowv=speed * math.cos(angle), colv=speed * math.sin(angle),
                          extinction_r=extinction)
    # Galaxies.
    is_de_vaucouleurs = rng.random() < 0.4
    redshift = min(0.6, abs(rng.gauss(0.10, 0.08)) + 0.01)
    size = max(1.0, rng.gauss(4.0, 2.0)) / (1.0 + 4.0 * redshift)
    axis_ratio = min(1.0, max(0.25, rng.gauss(0.7, 0.2)))
    return TrueObject(kind, ra, dec, mag_r,
                      _galaxy_colors(rng, mag_r, is_de_vaucouleurs),
                      redshift=redshift, size_arcsec=size, axis_ratio=axis_ratio,
                      position_angle=rng.uniform(0.0, 180.0),
                      is_de_vaucouleurs=is_de_vaucouleurs,
                      has_emission_lines=not is_de_vaucouleurs and rng.random() < 0.7,
                      extinction_r=extinction)


# ---------------------------------------------------------------------------
# Planted populations
# ---------------------------------------------------------------------------

def _plant_q1_cluster(rng: random.Random, planted: PlantedPopulations) -> list[TrueObject]:
    """Galaxies (and a few saturated interlopers) within 1' of the Query 1 spot."""
    center_ra, center_dec = planted.q1_cluster_center
    objects: list[TrueObject] = []
    radius_deg = planted.q1_cluster_radius_arcmin / 60.0
    for index in range(planted.q1_cluster_galaxies):
        radius = radius_deg * math.sqrt(rng.random())
        angle = rng.uniform(0.0, 2.0 * math.pi)
        ra = center_ra + radius * math.cos(angle) / max(0.2, math.cos(math.radians(center_dec)))
        dec = center_dec + radius * math.sin(angle)
        mag_r = rng.uniform(17.0, 20.5)
        galaxy = TrueObject("galaxy", ra, dec, mag_r,
                            _galaxy_colors(rng, mag_r, index % 3 == 0),
                            redshift=rng.gauss(0.08, 0.01),
                            size_arcsec=rng.uniform(2.0, 6.0),
                            axis_ratio=rng.uniform(0.5, 0.95),
                            position_angle=rng.uniform(0, 180),
                            is_de_vaucouleurs=index % 3 == 0,
                            has_emission_lines=index % 3 != 0,
                            tag="q1_cluster")
        objects.append(galaxy)
    for _ in range(planted.q1_saturated_objects):
        radius = radius_deg * math.sqrt(rng.random())
        angle = rng.uniform(0.0, 2.0 * math.pi)
        ra = center_ra + radius * math.cos(angle)
        dec = center_dec + radius * math.sin(angle)
        mag_r = rng.uniform(11.0, 13.5)     # bright enough to saturate
        objects.append(TrueObject("galaxy", ra, dec, mag_r,
                                  _galaxy_colors(rng, mag_r, True),
                                  redshift=0.02, size_arcsec=8.0,
                                  axis_ratio=0.8, is_de_vaucouleurs=True,
                                  tag="q1_saturated"))
    return objects


def _plant_neo_pairs(rng: random.Random, geometry: SurveyGeometry,
                     planted: PlantedPopulations) -> list[TrueObject]:
    """Fast-moving object streak pairs for the NEO query (Query 15B).

    Each pair is two elongated detections — one dominated by the r band,
    one by the g band — within 4 arcminutes of one another, placed so
    the two detections land in adjacent fields of the same run/camcol.
    The degenerate pairs share (almost) the same position, mimicking the
    deblended duplicate the paper mentions.
    """
    objects: list[TrueObject] = []
    candidates = [geometry.fields[index] for index in range(len(geometry.fields))
                  if geometry.adjacent_fields(geometry.fields[index])]
    if not candidates:
        candidates = list(geometry.fields)
    total_pairs = planted.neo_pairs + planted.neo_degenerate_pairs
    for pair_index in range(total_pairs):
        home = candidates[pair_index % len(candidates)]
        neighbours = geometry.adjacent_fields(home)
        partner_field = neighbours[0] if neighbours else home
        degenerate = pair_index >= planted.neo_pairs
        base_mag = rng.uniform(17.0, 20.0)
        separation_deg = (0.002 if degenerate else rng.uniform(0.02, 0.055))
        dec_low = max(home.dec_min, partner_field.dec_min)
        dec_high = min(home.dec_max, partner_field.dec_max)
        dec_red = (rng.uniform(dec_low + 0.005, dec_high - 0.005)
                   if dec_high - dec_low > 0.01 else home.dec_center)
        if partner_field is home:
            # No adjacent field column exists (very small survey chunks):
            # keep both detections inside the home field.
            ra_red = home.ra_center - separation_deg / 2.0
            ra_green = ra_red + separation_deg
        elif partner_field.ra_min >= home.ra_max:
            ra_red = home.ra_max - 0.01
            ra_green = ra_red + separation_deg
        else:
            ra_red = home.ra_min + 0.01
            ra_green = ra_red - separation_deg
        dec_green = dec_red + rng.uniform(-0.005, 0.005)
        tag = f"neo_pair_{pair_index}" + ("_degenerate" if degenerate else "")
        red = TrueObject("asteroid", ra_red, dec_red, base_mag,
                         _colors_from_offsets(base_mag, 2.5, 2.2, -0.3, -0.2),
                         rowv=0.0, colv=0.0, size_arcsec=4.0, axis_ratio=0.35,
                         position_angle=rng.uniform(0, 180), tag=tag + "_red")
        green_mag = base_mag + rng.uniform(-1.2, 1.2)
        green = TrueObject("asteroid", ra_green, dec_green, green_mag + 2.2,
                           _colors_from_offsets(green_mag + 2.2, 2.0, -2.2, -2.4, -2.5),
                           rowv=0.0, colv=0.0, size_arcsec=4.0, axis_ratio=0.35,
                           position_angle=rng.uniform(0, 180), tag=tag + "_green")
        objects.extend([red, green])
    return objects


def _poisson(rng: random.Random, mean: float) -> int:
    """Poisson sample; falls back to a normal approximation for large means."""
    if mean > 500.0:
        return max(0, int(rng.gauss(mean, math.sqrt(mean))))
    total = 0
    threshold = math.exp(-mean)
    product = rng.random()
    while product > threshold:
        total += 1
        product *= rng.random()
    return total
