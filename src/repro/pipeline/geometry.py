"""Survey geometry: stripes, strips, runs, camera columns and fields.

"The actual observations are taken in stripes about 2.5° wide and 120°
long ... these stripes are in fact the mosaic of two night's
observations (two strips) with about 10% overlap.  Consequently, about
11% of the objects appear more than once in the pipeline." (paper §9,
Figure 6).

The reproduction generates a configurable chunk of one equatorial
stripe: two interleaved strips (one run each), six camera columns per
strip whose bands overlap their neighbours by a few percent, and fields
tiling each band along right ascension.  Objects that fall inside the
overlap between two bands are detected twice, which is how the survey's
primary/secondary duplication arises downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Geometry constants chosen to match the SDSS camera layout closely enough
#: that the derived statistics (objects per field, duplicate fraction) land
#: in the paper's range.
STRIPE_WIDTH_DEG = 2.5
CAMCOLS_PER_STRIP = 6
BANDS_PER_STRIPE = 2 * CAMCOLS_PER_STRIP
FIELD_LENGTH_DEG = 0.22
#: Each interior band boundary is doubly covered over 2 x this fraction of a
#: band height; 11 boundaries over 12 bands gives the paper's ~11% duplicates.
BAND_OVERLAP_FRACTION = 0.06
NORTH_RUN = 756
SOUTH_RUN = 745
DEFAULT_RERUN = 44
DEFAULT_STRIPE_NUMBER = 10


@dataclass(frozen=True)
class FieldGeometry:
    """One field: the unit of pipeline processing and of the Field table."""

    field_id: int
    run: int
    rerun: int
    camcol: int
    field: int
    stripe: int
    strip: str
    ra_min: float
    ra_max: float
    dec_min: float
    dec_max: float
    mjd: float
    seeing: float
    sky_brightness: float
    quality: int

    @property
    def ra_center(self) -> float:
        return (self.ra_min + self.ra_max) / 2.0

    @property
    def dec_center(self) -> float:
        return (self.dec_min + self.dec_max) / 2.0

    @property
    def area_sq_deg(self) -> float:
        return (self.ra_max - self.ra_min) * (self.dec_max - self.dec_min)

    def contains(self, ra: float, dec: float) -> bool:
        return (self.ra_min <= ra < self.ra_max
                and self.dec_min <= dec < self.dec_max)


@dataclass
class SurveyGeometry:
    """The full set of fields of the generated survey chunk."""

    fields: list[FieldGeometry]
    ra_min: float
    ra_max: float
    dec_min: float
    dec_max: float
    stripe: int = DEFAULT_STRIPE_NUMBER

    def __iter__(self) -> Iterator[FieldGeometry]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    @property
    def total_area_sq_deg(self) -> float:
        """Footprint area (overlaps counted once)."""
        return (self.ra_max - self.ra_min) * (self.dec_max - self.dec_min)

    def fields_containing(self, ra: float, dec: float) -> list[FieldGeometry]:
        """Every field whose footprint contains the position (1 normally, 2 in overlaps)."""
        return [geometry for geometry in self.fields if geometry.contains(ra, dec)]

    def primary_field_for(self, ra: float, dec: float) -> Optional[FieldGeometry]:
        """The field that "wins" a duplicate detection (lowest run, then camcol)."""
        candidates = self.fields_containing(ra, dec)
        if not candidates:
            return None
        return min(candidates, key=lambda g: (g.run, g.camcol, g.field))

    def adjacent_fields(self, geometry: FieldGeometry) -> list[FieldGeometry]:
        """Fields in the same run/camcol with a field number differing by one."""
        return [other for other in self.fields
                if other.run == geometry.run and other.camcol == geometry.camcol
                and abs(other.field - geometry.field) == 1]


def make_geometry(n_fields: int, *, center_ra: float = 185.0,
                  stripe: int = DEFAULT_STRIPE_NUMBER,
                  mjd_start: float = 51433.0,
                  seed: int = 0) -> SurveyGeometry:
    """Build a survey chunk containing approximately ``n_fields`` fields.

    The chunk is a piece of one 2.5°-wide equatorial stripe centred on
    ``center_ra``: 12 camera-column bands (6 per strip) stacked in
    declination, tiled along right ascension with enough field columns
    to reach the requested count.
    """
    import random

    rng = random.Random(seed)
    n_fields = max(BANDS_PER_STRIPE, int(n_fields))
    columns = max(1, round(n_fields / BANDS_PER_STRIPE))
    ra_width = columns * FIELD_LENGTH_DEG
    ra_min = center_ra - ra_width / 2.0
    dec_min = -STRIPE_WIDTH_DEG / 2.0

    band_height = STRIPE_WIDTH_DEG / BANDS_PER_STRIPE
    overlap = band_height * BAND_OVERLAP_FRACTION

    fields: list[FieldGeometry] = []
    field_id = 0
    for band_index in range(BANDS_PER_STRIPE):
        strip = "N" if band_index % 2 == 0 else "S"
        run = NORTH_RUN if strip == "N" else SOUTH_RUN
        camcol = band_index // 2 + 1
        band_dec_min = dec_min + band_index * band_height - (overlap if band_index > 0 else 0.0)
        band_dec_max = dec_min + (band_index + 1) * band_height + (
            overlap if band_index < BANDS_PER_STRIPE - 1 else 0.0)
        for column in range(columns):
            field_id += 1
            field_number = 100 + column
            fields.append(FieldGeometry(
                field_id=field_id,
                run=run,
                rerun=DEFAULT_RERUN,
                camcol=camcol,
                field=field_number,
                stripe=stripe,
                strip=strip,
                ra_min=ra_min + column * FIELD_LENGTH_DEG,
                ra_max=ra_min + (column + 1) * FIELD_LENGTH_DEG,
                dec_min=band_dec_min,
                dec_max=band_dec_max,
                mjd=mjd_start + (0.0 if strip == "N" else 27.0),
                seeing=max(0.8, rng.gauss(1.4, 0.2)),
                sky_brightness=rng.gauss(21.0, 0.3),
                quality=rng.choices([1, 2, 3], weights=[0.05, 0.25, 0.70])[0],
            ))
    return SurveyGeometry(fields=fields,
                          ra_min=ra_min, ra_max=ra_min + ra_width,
                          dec_min=dec_min, dec_max=dec_min + STRIPE_WIDTH_DEG,
                          stripe=stripe)


def overlap_fraction(geometry: SurveyGeometry, sample_points: int = 4000,
                     seed: int = 1) -> float:
    """Monte-Carlo estimate of the fraction of the footprint seen by 2+ fields.

    Used by tests to confirm the generated geometry reproduces the
    paper's "about 11% of the objects appear more than once".
    """
    import random

    rng = random.Random(seed)
    duplicated = 0
    for _ in range(sample_points):
        ra = rng.uniform(geometry.ra_min, geometry.ra_max)
        dec = rng.uniform(geometry.dec_min, geometry.dec_max)
        if len(geometry.fields_containing(ra, dec)) >= 2:
            duplicated += 1
    return duplicated / sample_points
