"""Survey orchestration: the synthetic Early Data Release generator.

``SyntheticSurvey`` wires the substrate pieces together the way the
real survey does: geometry → true sky → frames (photometric) pipeline
per field, with duplicate detections in overlaps → deblending and
primary resolution → spectroscopic targeting, plate design and the 1D
pipeline → cross-matching → CSV export for the loader.

The ``scale`` parameter is the fraction of the Early Data Release being
generated: scale 0.001 produces ≈14 fields holding ≈17 000 detections,
≈75 spectra and the same inter-table ratios as the paper's Table 1.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..schema.flags import PhotoType
from .crossmatch import CrossMatcher, MatchRates
from .csvexport import export_tables
from .deblend import DEFAULT_BLEND_FRACTION, deblend_family, primary_fraction, resolve_primaries
from .geometry import SurveyGeometry, make_geometry
from .photometric import FramesPipeline
from .population import (OBJECTS_PER_SQ_DEG, PlantedPopulations, TrueObject,
                         synthesize_population)
from .spectroscopic import SpectroscopicOutput, SpectroscopicPipeline
from .targeting import TARGET_FRACTION, design_plates, select_targets

#: Field count of the real Early Data Release (Table 1: 14k Field rows).
EDR_FIELD_COUNT = 14000


@dataclass
class SurveyConfig:
    """Configuration of one synthetic survey generation run."""

    scale: float = 0.001                 # fraction of the Early Data Release
    seed: int = 42
    center_ra: float = 185.0
    density_per_sq_deg: float = OBJECTS_PER_SQ_DEG
    target_fraction: float = TARGET_FRACTION
    blend_fraction: float = DEFAULT_BLEND_FRACTION
    planted: PlantedPopulations = field(default_factory=PlantedPopulations)
    match_rates: MatchRates = field(default_factory=MatchRates)
    frame_zoom_levels: int = 5

    @property
    def n_fields(self) -> int:
        return max(12, int(round(EDR_FIELD_COUNT * self.scale)))


@dataclass
class PipelineOutput:
    """Everything the pipeline produced, ready for the loader."""

    config: SurveyConfig
    geometry: SurveyGeometry
    tables: dict[str, list[dict]]
    true_objects: list[TrueObject]
    true_lookup: dict[int, TrueObject]

    def counts(self) -> dict[str, int]:
        return {name: len(rows) for name, rows in self.tables.items()}

    def summary(self) -> dict[str, float]:
        photo = self.tables.get("PhotoObj", [])
        return {
            "fields": len(self.tables.get("Field", [])),
            "photo_objects": len(photo),
            "primary_fraction": primary_fraction(photo),
            "spectra": len(self.tables.get("SpecObj", [])),
            "area_sq_deg": self.geometry.total_area_sq_deg,
        }

    def export_csv(self, directory: Path) -> dict[str, Path]:
        """Write one CSV per table (the pipeline→loader hand-off format)."""
        return export_tables(Path(directory), self.tables)


class SyntheticSurvey:
    """Generates a synthetic SDSS data release at a configurable scale."""

    def __init__(self, config: Optional[SurveyConfig] = None):
        self.config = config or SurveyConfig()

    def run(self) -> PipelineOutput:
        config = self.config
        rng = random.Random(config.seed)
        geometry = make_geometry(config.n_fields, center_ra=config.center_ra,
                                 seed=config.seed)
        geometry = self._protect_planted_fields(geometry, config)
        population = synthesize_population(
            geometry, rng=random.Random(rng.randrange(2 ** 31)),
            density_per_sq_deg=config.density_per_sq_deg, planted=config.planted)

        frames = FramesPipeline(random.Random(rng.randrange(2 ** 31)))
        field_rows = {id(geom): frames.field_row(geom) for geom in geometry}
        frame_rows: list[dict] = []
        for geom in geometry:
            frame_rows.extend(frames.frame_rows(geom, zoom_levels=config.frame_zoom_levels))

        photo_rows, profile_rows, true_lookup = self._detect_objects(
            frames, geometry, population, field_rows,
            random.Random(rng.randrange(2 ** 31)))

        targets = select_targets(photo_rows, true_lookup,
                                 rng=random.Random(rng.randrange(2 ** 31)),
                                 target_fraction=config.target_fraction)
        plates = design_plates(targets)
        spectro = SpectroscopicPipeline(random.Random(rng.randrange(2 ** 31)))
        spectro_output = spectro.process_plates(plates)
        self._backfill_spec_obj_ids(photo_rows, spectro_output)

        matcher = CrossMatcher(random.Random(rng.randrange(2 ** 31)),
                               rates=config.match_rates)
        crossmatch_output = matcher.match(photo_rows)

        tables = {
            "Field": list(field_rows.values()),
            "Frame": frame_rows,
            "PhotoObj": photo_rows,
            "Profile": profile_rows,
            "USNO": crossmatch_output.usno,
            "ROSAT": crossmatch_output.rosat,
            "FIRST": crossmatch_output.first,
            "Plate": spectro_output.plates,
            "SpecObj": spectro_output.spec_objs,
            "SpecLine": spectro_output.spec_lines,
            "SpecLineIndex": spectro_output.spec_line_indices,
            "xcRedShift": spectro_output.xc_redshifts,
            "elRedShift": spectro_output.el_redshifts,
        }
        return PipelineOutput(config=config, geometry=geometry, tables=tables,
                              true_objects=population, true_lookup=true_lookup)

    # -- internals -----------------------------------------------------------

    def _protect_planted_fields(self, geometry: SurveyGeometry,
                                config: SurveyConfig) -> SurveyGeometry:
        """Force survey quality on the fields holding the Query 1 cluster.

        Query 1 relies on the Galaxy view (primary + OK-run objects); if
        the randomly drawn field quality marked the planted cluster's
        field as bad, the worked example would come back empty, so those
        particular fields are pinned to quality 3.
        """
        center_ra, center_dec = config.planted.q1_cluster_center
        upgraded = []
        for geom in geometry.fields:
            if geom.contains(center_ra, center_dec) and geom.quality < 2:
                upgraded.append(dataclasses.replace(geom, quality=3))
            else:
                upgraded.append(geom)
        return dataclasses.replace(geometry, fields=upgraded)

    def _detect_objects(self, frames: FramesPipeline, geometry: SurveyGeometry,
                        population: list[TrueObject], field_rows: dict[int, dict],
                        rng: random.Random) -> tuple[list[dict], list[dict], dict[int, TrueObject]]:
        """Measure every true object in every field that sees it."""
        config = self.config
        photo_rows: list[dict] = []
        profile_rows: list[dict] = []
        true_lookup: dict[int, TrueObject] = {}
        families: list[list[list[dict]]] = []
        obj_counters: dict[int, int] = {}
        geometry_by_identity = {id(geom): geom for geom in geometry}

        for source in population:
            observing_fields = geometry.fields_containing(source.ra, source.dec)
            if not observing_fields:
                continue
            primary_field = geometry.primary_field_for(source.ra, source.dec)
            observing_fields.sort(
                key=lambda geom: 0 if geom is primary_field else 1)
            observations: list[list[dict]] = []
            force_blend = None
            if source.tag.startswith("neo_pair") and source.tag.endswith("_degenerate_red"):
                force_blend = False
            for geom in observing_fields:
                counter_key = id(geom)
                obj_counters[counter_key] = obj_counters.get(counter_key, 0) + 1
                detection = frames.measure(source, geom, obj_counters[counter_key])
                rows, next_number = deblend_family(
                    detection, rng, obj_counters[counter_key] + 20000,
                    blend_fraction=config.blend_fraction,
                    force=False if source.tag else force_blend)
                if next_number != obj_counters[counter_key] + 20000:
                    # Children consumed object numbers above the 20000 offset; keep
                    # the per-field counter monotone so ids never collide.
                    obj_counters[counter_key] = next_number - 20000
                observations.append(rows)
                for row in rows:
                    true_lookup[row["objID"]] = source
            families.append(observations)
            for rows in observations:
                for row in rows:
                    photo_rows.append(row)
                    profile_rows.append(frames.profile_row(row, source))

        resolve_primaries(families)
        self._update_field_counts(photo_rows, field_rows, geometry_by_identity)
        return photo_rows, profile_rows, true_lookup

    def _update_field_counts(self, photo_rows: list[dict], field_rows: dict[int, dict],
                             geometry_by_identity: dict[int, object]) -> None:
        by_field_id: dict[int, dict] = {row["fieldID"]: row for row in field_rows.values()}
        for row in photo_rows:
            field_row = by_field_id.get(row["fieldID"])
            if field_row is None:
                continue
            field_row["nObjects"] += 1
            if row["type"] == int(PhotoType.STAR):
                field_row["nStars"] += 1
            elif row["type"] == int(PhotoType.GALAXY):
                field_row["nGalaxy"] += 1

    def _backfill_spec_obj_ids(self, photo_rows: list[dict],
                               spectro_output: SpectroscopicOutput) -> None:
        """Point PhotoObj.specObjID at the matching spectrum (0 when none)."""
        by_obj_id = {row["objID"]: row["specObjID"] for row in spectro_output.spec_objs}
        for row in photo_rows:
            row["specObjID"] = by_obj_id.get(row["objID"], 0)
