"""Deblending and primary/secondary resolution.

"One star or galaxy often overlaps another, or a star is part of a
cluster.  In these cases child objects are deblended from the parent
object, and each child also appears in the database (deblended parents
are never primary.)  In the end about 80% of the photo objects are
primary." (paper §9)

The deblender here works on measured detection rows: a configurable
fraction of extended detections become blend *parents* with two child
rows each, and the primary/secondary pass then marks exactly one
detection family per true object as primary — children of the primary
detection are primary, blend parents never are, and detections in
overlap regions become secondaries.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..schema.flags import PhotoFlags, PhotoType

def _recompute_position_columns(row: dict) -> None:
    """Refresh the unit-vector and HTM columns after a position change."""
    if "cx" in row and "cy" in row and "cz" in row:
        from ..htm import lookup_id, radec_to_unit

        cx, cy, cz = radec_to_unit(row["ra"], row["dec"])
        row["cx"], row["cy"], row["cz"] = cx, cy, cz
        if "htmID" in row:
            row["htmID"] = lookup_id(row["ra"], row["dec"])


#: Fraction of extended detections that get deblended into two children.
#: Combined with the ~11% duplicate-detection rate this lands the primary
#: fraction near the paper's 80%.
DEFAULT_BLEND_FRACTION = 0.14


def deblend_detections(detections: list[dict], *, rng: Optional[random.Random] = None,
                       blend_fraction: float = DEFAULT_BLEND_FRACTION) -> list[dict]:
    """Expand a list of detection rows with deblended children.

    Parent rows are modified in place (BLENDED flag, nChild=2) and two
    child rows per parent are appended.  Child objIDs reuse the parent's
    field coordinates with fresh object numbers above the existing
    range.  Returns the expanded list (parents + children + untouched
    rows); the caller still owns primary/secondary marking.
    """
    rng = rng or random.Random(0)
    next_obj_number = max((row["obj"] for row in detections), default=0) + 1
    expanded = list(detections)
    for row in detections:
        if row["type"] != int(PhotoType.GALAXY) and rng.random() > 0.25:
            # Blends are mostly around extended objects; stars blend less often.
            continue
        if rng.random() >= blend_fraction:
            continue
        row["flags"] |= int(PhotoFlags.BLENDED)
        row["nChild"] = 2
        for child_index in range(2):
            child = dict(row)
            child["obj"] = next_obj_number
            child["objID"] = (row["objID"] & ~0xFFFF) | next_obj_number
            next_obj_number += 1
            child["parentID"] = row["objID"]
            child["nChild"] = 0
            child["flags"] = (row["flags"] & ~int(PhotoFlags.BLENDED)) | int(PhotoFlags.CHILD)
            offset_scale = max(row["petroRad_r"], 1.0) / 3600.0
            child["ra"] = row["ra"] + rng.gauss(0.0, offset_scale)
            child["dec"] = row["dec"] + rng.gauss(0.0, offset_scale)
            # Each child carries roughly half the parent's flux (0.75 mag fainter).
            for key, value in list(child.items()):
                if isinstance(key, str) and ("mag_" in key.lower()) and "err" not in key.lower():
                    child[key] = value + 0.75 + rng.gauss(0.0, 0.1)
            child["probPSF"] = min(1.0, max(0.0, rng.gauss(0.5, 0.3)))
            if child_index == 1 and rng.random() < 0.5:
                child["type"] = int(PhotoType.STAR)
            expanded.append(child)
    return expanded


def deblend_family(row: dict, rng: random.Random, next_obj_number: int, *,
                   blend_fraction: float = DEFAULT_BLEND_FRACTION,
                   force: Optional[bool] = None) -> tuple[list[dict], int]:
    """Possibly deblend one detection into a parent plus two children.

    Returns ``(rows, next_obj_number)`` where rows is ``[row]`` when no
    deblending happened or ``[parent, child, child]`` otherwise.  The
    blend decision follows the same class-dependent probabilities as
    :func:`deblend_detections`; pass ``force`` to override it (used by
    tests and by the survey generator to keep blend statistics stable).
    """
    should_blend = force
    if should_blend is None:
        probability = blend_fraction if row["type"] == int(PhotoType.GALAXY) \
            else blend_fraction * 0.25
        should_blend = rng.random() < probability
    if not should_blend:
        return [row], next_obj_number
    row["flags"] |= int(PhotoFlags.BLENDED)
    row["nChild"] = 2
    rows = [row]
    for child_index in range(2):
        child = dict(row)
        child["obj"] = next_obj_number
        child["objID"] = (row["objID"] & ~0xFFFF) | next_obj_number
        next_obj_number += 1
        child["parentID"] = row["objID"]
        child["nChild"] = 0
        child["flags"] = (row["flags"] & ~int(PhotoFlags.BLENDED)) | int(PhotoFlags.CHILD)
        offset_scale = max(row["petroRad_r"], 1.0) / 3600.0
        child["ra"] = row["ra"] + rng.gauss(0.0, offset_scale)
        child["dec"] = row["dec"] + rng.gauss(0.0, offset_scale)
        for key, value in list(child.items()):
            if isinstance(key, str) and ("mag_" in key.lower()) and "err" not in key.lower():
                child[key] = value + 0.75 + rng.gauss(0.0, 0.1)
        child["probPSF"] = min(1.0, max(0.0, rng.gauss(0.5, 0.3)))
        if child_index == 1 and rng.random() < 0.5:
            child["type"] = int(PhotoType.STAR)
        _recompute_position_columns(child)
        rows.append(child)
    return rows, next_obj_number


def resolve_primaries(families: Iterable[list[dict]]) -> tuple[int, int]:
    """Mark primary/secondary detections across duplicate families.

    ``families`` yields, for each true object, the list of all its
    detection rows (including deblended children) grouped by observation
    (the first group is the one in the object's primary field).  Returns
    ``(primary_count, secondary_count)``.
    """
    primary_count = 0
    secondary_count = 0
    for observations in families:
        for observation_index, rows in enumerate(observations):
            is_primary_observation = observation_index == 0
            for row in rows:
                is_parent = bool(row["flags"] & int(PhotoFlags.BLENDED))
                if is_primary_observation and not is_parent:
                    row["mode"] = 1
                    row["flags"] |= int(PhotoFlags.PRIMARY)
                    primary_count += 1
                else:
                    row["mode"] = 3 if is_parent and is_primary_observation else 2
                    row["flags"] |= int(PhotoFlags.SECONDARY)
                    secondary_count += 1
    return primary_count, secondary_count


def primary_fraction(photo_rows: Iterable[dict]) -> float:
    """Fraction of rows flagged primary (the paper's ~80% check)."""
    total = 0
    primary = 0
    for row in photo_rows:
        total += 1
        if row["flags"] & int(PhotoFlags.PRIMARY):
            primary += 1
    return primary / total if total else 0.0
