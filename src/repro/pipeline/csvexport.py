"""CSV export of pipeline products.

"The SDSS data pipeline produces FITS files, but also produces
comma-separated list (csv) files of the object data and PNG files ...
These files are then copied to the SkyServer.  From there, a script
loads the data using the SQL Server's Data Transformation Service."
(paper §9.4)

The reproduction's pipeline hands its products to the loader the same
way: one CSV file per table.  Blob columns are hex-encoded in the CSV
(standing in for the "file names in some fields" that DTS resolved to
image files), and the loader decodes them back to bytes.
"""

from __future__ import annotations

import csv
import datetime as _dt
from pathlib import Path
from typing import Mapping, Sequence

#: Suffix marking hex-encoded binary columns in exported CSV files.
BLOB_PREFIX = "hex:"


def encode_value(value: object) -> str:
    """Render one value for CSV output."""
    if value is None:
        return ""
    if isinstance(value, (bytes, bytearray)):
        return BLOB_PREFIX + bytes(value).hex()
    if isinstance(value, _dt.datetime):
        return value.isoformat()
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def decode_value(text: str) -> object:
    """Best-effort inverse of :func:`encode_value` (loader-side type conversion
    still happens against the table schema)."""
    if text == "":
        return None
    if text.startswith(BLOB_PREFIX):
        return bytes.fromhex(text[len(BLOB_PREFIX):])
    return text


def write_csv(path: Path, rows: Sequence[Mapping[str, object]],
              columns: Sequence[str] | None = None) -> int:
    """Write ``rows`` to ``path``; returns the number of data rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        columns = list(rows[0].keys()) if rows else []
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in rows:
            writer.writerow([encode_value(row.get(column)) for column in columns])
    return len(rows)


def read_csv(path: Path) -> tuple[list[str], list[dict[str, object]]]:
    """Read a CSV produced by :func:`write_csv`; returns (columns, rows)."""
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            columns = next(reader)
        except StopIteration:
            return [], []
        rows = []
        for record in reader:
            rows.append({column: decode_value(value)
                         for column, value in zip(columns, record)})
    return columns, rows


def export_tables(directory: Path, tables: Mapping[str, Sequence[Mapping[str, object]]],
                  column_order: Mapping[str, Sequence[str]] | None = None) -> dict[str, Path]:
    """Write one ``<table>.csv`` per entry of ``tables``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    for table_name, rows in tables.items():
        columns = None
        if column_order is not None and table_name in column_order:
            columns = list(column_order[table_name])
        path = directory / f"{table_name}.csv"
        write_csv(path, list(rows), columns)
        written[table_name] = path
    return written
