"""The spectroscopic (1D) pipeline: plates, spectra, lines and redshifts.

"The pipeline processing typically extracts about 30 spectral lines
from each spectrogram and carefully estimates the object's redshift ...
Each line is cross-correlated with a model and corrected for redshift.
The resulting attributes are stored in the xcRedShift table.  A
separate redshift is derived using only emission lines.  Those
quantities are stored in the elRedShift table." (paper §9.1.2)
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..schema.flags import SpecClass, SpecLineNames
from .photometric import encode_spec_obj_id
from .targeting import PlateDesign, Target

#: Emission lines (positive equivalent width) and absorption lines
#: (negative equivalent width) the simulated 1D pipeline measures.
EMISSION_LINES = [
    SpecLineNames.H_ALPHA, SpecLineNames.H_BETA, SpecLineNames.H_GAMMA,
    SpecLineNames.OIII_5007, SpecLineNames.OII_3727, SpecLineNames.NII_6585,
    SpecLineNames.SII_6718, SpecLineNames.LY_ALPHA, SpecLineNames.CIV_1549,
    SpecLineNames.MGII_2799,
]
ABSORPTION_LINES = [
    SpecLineNames.CA_K_3935, SpecLineNames.CA_H_3970, SpecLineNames.G_4306,
    SpecLineNames.MG_5177, SpecLineNames.NA_5896,
]

#: Named line-group indices stored in SpecLineIndex (the Lick/IDS system plus
#: the 4000 A break); Table 1 shows ≈29 SpecLineIndex rows per spectrum.
LINE_INDEX_NAMES = [
    "D4000", "HdeltaA", "HdeltaF", "CN1", "CN2", "Ca4227", "G4300", "HgammaA",
    "HgammaF", "Fe4383", "Ca4455", "Fe4531", "Fe4668", "Lick_Hb", "Fe5015",
    "Mg1", "Mg2", "Mg_b", "Fe5270", "Fe5335", "Fe5406", "Fe5709", "Fe5782",
    "NaD", "TiO1", "TiO2", "CaII_K", "CaII_H",
]

#: Number of cross-correlation templates (one xcRedShift row per template,
#: matching Table 1's ~30 xcRedShift rows per spectrum).
XC_TEMPLATES = 30

#: Bytes for the GIF rendering of a spectrum stored in SpecObj.img.
SPECTRUM_GIF_BYTES = 12288


@dataclass
class SpectroscopicOutput:
    """Rows produced by one run of the spectroscopic pipeline."""

    plates: list[dict] = field(default_factory=list)
    spec_objs: list[dict] = field(default_factory=list)
    spec_lines: list[dict] = field(default_factory=list)
    spec_line_indices: list[dict] = field(default_factory=list)
    xc_redshifts: list[dict] = field(default_factory=list)
    el_redshifts: list[dict] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        return {
            "Plate": len(self.plates),
            "SpecObj": len(self.spec_objs),
            "SpecLine": len(self.spec_lines),
            "SpecLineIndex": len(self.spec_line_indices),
            "xcRedShift": len(self.xc_redshifts),
            "elRedShift": len(self.el_redshifts),
        }


class SpectroscopicPipeline:
    """Simulates the 2D+1D spectroscopic reductions for a set of plates."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)
        self._line_counter = 0
        self._index_counter = 0
        self._xc_counter = 0
        self._el_counter = 0

    def process_plates(self, plates: Sequence[PlateDesign]) -> SpectroscopicOutput:
        output = SpectroscopicOutput()
        for plate in plates:
            output.plates.append(self._plate_row(plate))
            for fiber, target in plate.targets:
                spec_obj_id = encode_spec_obj_id(plate.plate_number, int(plate.mjd), fiber)
                spec_row = self._spec_obj_row(spec_obj_id, plate, fiber, target)
                output.spec_objs.append(spec_row)
                lines_before = len(output.spec_lines)
                self._measure_lines(spec_obj_id, target, spec_row["z"], output)
                self._pad_with_unidentified_lines(
                    spec_obj_id, len(output.spec_lines) - lines_before, output)
                self._line_group_indices(spec_obj_id, target, output)
                self._cross_correlate(spec_obj_id, target, spec_row["z"], output)
                # The emission-line redshift pipeline runs whenever it finds a
                # few usable lines; Table 1 shows elRedShift rows for ~80% of
                # spectra, not just the strongly star-forming ones.
                if (target.has_emission_lines or target.kind == "qso"
                        or self.rng.random() < 0.65):
                    self._emission_line_redshift(spec_obj_id, spec_row["z"], output)
        return output

    # -- row builders --------------------------------------------------------

    def _plate_row(self, plate: PlateDesign) -> dict:
        return {
            "plateID": plate.plate_id,
            "plateNumber": plate.plate_number,
            "mjd": plate.mjd,
            "ra": plate.ra,
            "dec": plate.dec,
            "nFibers": plate.n_fibers,
            "exposureTime": 45.0 * 60.0,
            "program": plate.program,
            "quality": self.rng.choices([1, 2, 3], weights=[0.03, 0.17, 0.80])[0],
        }

    def _spec_obj_row(self, spec_obj_id: int, plate: PlateDesign, fiber: int,
                      target: Target) -> dict:
        rng = self.rng
        true_z = target.redshift_hint
        if target.kind == "star":
            true_z = rng.gauss(0.0, 0.0003)
            spec_class = SpecClass.STAR
        elif target.kind == "qso":
            spec_class = SpecClass.HIZ_QSO if true_z > 2.3 else SpecClass.QSO
        else:
            spec_class = SpecClass.GALAXY
        z_error = max(1.0e-4, abs(rng.gauss(2.0e-4, 1.0e-4)))
        measured_z = true_z + rng.gauss(0.0, z_error)
        z_confidence = min(0.999, max(0.2, rng.gauss(0.95, 0.06)))
        if rng.random() < 0.02:
            # A few percent of redshifts fail; they get low confidence and UNKNOWN class.
            z_confidence = rng.uniform(0.0, 0.3)
            spec_class = SpecClass.UNKNOWN
        return {
            "specObjID": spec_obj_id,
            "plateID": plate.plate_id,
            "fiberID": fiber,
            "objID": target.obj_id,
            "ra": target.ra,
            "dec": target.dec,
            "z": measured_z,
            "zErr": z_error,
            "zConf": z_confidence,
            "zStatus": 4 if z_confidence > 0.35 else 1,
            "specClass": int(spec_class),
            "velDisp": abs(rng.gauss(150.0, 60.0)) if spec_class is SpecClass.GALAXY else 0.0,
            "velDispErr": abs(rng.gauss(15.0, 5.0)),
            "sn_0": abs(rng.gauss(12.0, 4.0)),
            "sn_1": abs(rng.gauss(15.0, 5.0)),
            "mag_0": target.fiber_mag_g,
            "mag_1": target.fiber_mag_r,
            "mag_2": target.fiber_mag_i,
            "img": _synthesize_spectrum_gif(spec_obj_id),
        }

    def _measure_lines(self, spec_obj_id: int, target: Target, redshift: float,
                       output: SpectroscopicOutput) -> None:
        """About 30 spectral lines per spectrum (emission and absorption)."""
        rng = self.rng
        emission_strength = 1.0 if (target.has_emission_lines or target.kind == "qso") else 0.15
        for line in EMISSION_LINES + ABSORPTION_LINES:
            # The pipeline measures every line position; weak ones get small EW.
            rest_wave = float(int(line))
            observed = rest_wave * (1.0 + redshift)
            if observed < 3800.0 or observed > 9200.0:
                continue
            is_emission = line in EMISSION_LINES
            if is_emission:
                equivalent_width = abs(rng.gauss(18.0, 14.0)) * emission_strength
                if line is SpecLineNames.H_ALPHA and target.has_emission_lines and rng.random() < 0.45:
                    # Strong star-forming galaxies: EW(Halpha) > 40 A (Query 8).
                    equivalent_width = rng.uniform(42.0, 120.0)
            else:
                equivalent_width = -abs(rng.gauss(3.0, 2.0))
            self._line_counter += 1
            output.spec_lines.append({
                "specLineID": (spec_obj_id << 8) | (self._line_counter & 0xFF),
                "specObjID": spec_obj_id,
                "lineID": int(line),
                "wave": observed + rng.gauss(0.0, 0.3),
                "waveErr": abs(rng.gauss(0.3, 0.1)),
                "ew": equivalent_width,
                "ewErr": abs(rng.gauss(1.0, 0.5)),
                "height": abs(rng.gauss(8.0, 4.0)) * (1.0 if is_emission else 0.4),
                "sigma": abs(rng.gauss(2.5, 0.8)),
                "continuum": abs(rng.gauss(10.0, 3.0)),
                "category": 1 if is_emission else 2,
            })
            # Measure each Balmer line twice (emission + absorption component),
            # nudging the per-spectrum line count toward the paper's ~30.
            if line in (SpecLineNames.H_BETA, SpecLineNames.H_GAMMA):
                self._line_counter += 1
                output.spec_lines.append({
                    "specLineID": (spec_obj_id << 8) | (self._line_counter & 0xFF),
                    "specObjID": spec_obj_id,
                    "lineID": int(line),
                    "wave": observed + rng.gauss(0.0, 0.5),
                    "waveErr": abs(rng.gauss(0.5, 0.2)),
                    "ew": -abs(rng.gauss(2.0, 1.0)),
                    "ewErr": abs(rng.gauss(1.0, 0.5)),
                    "height": abs(rng.gauss(3.0, 1.5)),
                    "sigma": abs(rng.gauss(4.0, 1.0)),
                    "continuum": abs(rng.gauss(10.0, 3.0)),
                    "category": 2,
                })

    #: Target number of measured lines per spectrum (Table 1: ~27 per SpecObj).
    LINES_PER_SPECTRUM = 27

    def _pad_with_unidentified_lines(self, spec_obj_id: int, measured: int,
                                     output: SpectroscopicOutput) -> None:
        """Low-significance, unidentified detections the 1D pipeline also records.

        The identified-line list above yields ~15 lines inside the
        spectrograph's wavelength coverage; the real pipeline reports
        about 30 line measurements per spectrum, the rest being weak or
        unidentified features, which is what these rows stand in for.
        """
        rng = self.rng
        for _ in range(max(0, self.LINES_PER_SPECTRUM - measured)):
            self._line_counter += 1
            output.spec_lines.append({
                "specLineID": (spec_obj_id << 8) | (self._line_counter & 0xFF),
                "specObjID": spec_obj_id,
                "lineID": int(SpecLineNames.UNKNOWN),
                "wave": rng.uniform(3800.0, 9200.0),
                "waveErr": abs(rng.gauss(1.0, 0.4)),
                "ew": rng.gauss(0.0, 1.5),
                "ewErr": abs(rng.gauss(1.5, 0.5)),
                "height": abs(rng.gauss(1.5, 0.8)),
                "sigma": abs(rng.gauss(3.0, 1.0)),
                "continuum": abs(rng.gauss(10.0, 3.0)),
                "category": 1 if rng.random() < 0.5 else 2,
            })

    def _line_group_indices(self, spec_obj_id: int, target: Target,
                            output: SpectroscopicOutput) -> None:
        rng = self.rng
        for name in LINE_INDEX_NAMES:
            self._index_counter += 1
            output.spec_line_indices.append({
                "specLineIndexID": (spec_obj_id << 8) | (self._index_counter & 0xFF),
                "specObjID": spec_obj_id,
                "name": name,
                "value": rng.gauss(1.5, 0.5) if name == "D4000" else rng.gauss(2.0, 1.5),
                "error": abs(rng.gauss(0.1, 0.05)),
                "continuum": abs(rng.gauss(10.0, 3.0)),
            })

    def _cross_correlate(self, spec_obj_id: int, target: Target, redshift: float,
                         output: SpectroscopicOutput) -> None:
        """One xcRedShift row per template; the best template carries the peak r."""
        rng = self.rng
        best_template = rng.randrange(XC_TEMPLATES)
        for template in range(XC_TEMPLATES):
            self._xc_counter += 1
            is_best = template == best_template
            output.xc_redshifts.append({
                "xcRedShiftID": (spec_obj_id << 8) | (self._xc_counter & 0xFF),
                "specObjID": spec_obj_id,
                "z": redshift + rng.gauss(0.0, 2.0e-4 if is_best else 3.0e-3),
                "zErr": abs(rng.gauss(2.0e-4, 1.0e-4)) * (1.0 if is_best else 5.0),
                "r": abs(rng.gauss(12.0, 2.0)) if is_best else abs(rng.gauss(4.0, 1.5)),
                "tempNo": template,
                "peakHeight": abs(rng.gauss(0.8, 0.1)) if is_best else abs(rng.gauss(0.3, 0.1)),
                "width": abs(rng.gauss(3.0, 1.0)),
            })

    def _emission_line_redshift(self, spec_obj_id: int, redshift: float,
                                output: SpectroscopicOutput) -> None:
        rng = self.rng
        self._el_counter += 1
        output.el_redshifts.append({
            "elRedShiftID": (spec_obj_id << 8) | (self._el_counter & 0xFF),
            "specObjID": spec_obj_id,
            "z": redshift + rng.gauss(0.0, 3.0e-4),
            "zErr": abs(rng.gauss(3.0e-4, 1.0e-4)),
            "nLines": rng.randint(2, 8),
            "quality": min(1.0, abs(rng.gauss(0.9, 0.1))),
        })


def _synthesize_spectrum_gif(seed: int) -> bytes:
    """A compressible stand-in for the GIF rendering of a spectrum."""
    generator = random.Random(seed)
    raw = bytes(generator.getrandbits(8) for _ in range(SPECTRUM_GIF_BYTES // 6))
    return b"GIF89a" + zlib.compress(raw * 6, 1)[:SPECTRUM_GIF_BYTES - 6]
