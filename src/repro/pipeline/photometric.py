"""The frames (photometric) pipeline: from true objects to PhotoObj rows.

"Imaging pipelines analyze data from the camera to extract about 400
attributes for each celestial object along with a 5-color 'cutout'
image" (paper §1).  This module measures one detection of a true object
in one field: positions with astrometric noise, the six magnitude kinds
in five bands with photometric errors, isophotal extents and Stokes
ellipticity parameters, profile-fit likelihoods, flags, the
probabilistic star/galaxy classification, velocities for moving
objects, and the HTM id / unit-vector columns the spatial machinery
needs.  It also builds the Field, Frame and Profile rows.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Optional

from ..htm import lookup_id, radec_to_unit
from ..schema.flags import BANDS, MAGNITUDE_KINDS, PhotoFlags, PhotoStatus, PhotoType
from ..schema.photo import PROFILE_BINS, pack_profile
from .geometry import FieldGeometry
from .population import TrueObject

#: Offsets of each magnitude kind relative to the true (total) magnitude, by
#: object class.  PSF magnitudes miss the extended flux of galaxies; fiber
#: magnitudes measure only the inner 3 arcseconds; model magnitudes are the
#: best total estimates.
_MAGNITUDE_OFFSETS = {
    "star": {"psfMag": 0.0, "fiberMag": 0.12, "petroMag": 0.02,
             "modelMag": 0.0, "expMag": 0.02, "deVMag": 0.02},
    "galaxy": {"psfMag": 0.55, "fiberMag": 0.35, "petroMag": 0.05,
               "modelMag": 0.0, "expMag": 0.03, "deVMag": 0.03},
    "qso": {"psfMag": 0.0, "fiberMag": 0.12, "petroMag": 0.02,
            "modelMag": 0.0, "expMag": 0.02, "deVMag": 0.02},
    "asteroid": {"psfMag": 0.05, "fiberMag": 0.15, "petroMag": 0.05,
                 "modelMag": 0.0, "expMag": 0.05, "deVMag": 0.05},
}

#: Galactic extinction in each band relative to the r band (standard ratios).
_EXTINCTION_RATIOS = {"u": 1.87, "g": 1.38, "r": 1.0, "i": 0.76, "z": 0.54}

#: Magnitude brighter than which a detection saturates the CCD.
SATURATION_MAGNITUDE = 14.0

#: Bytes per full-resolution frame tile; each zoom level halves the linear size.
FRAME_TILE_BYTES = 16384


def encode_obj_id(run: int, rerun: int, camcol: int, field: int, obj: int) -> int:
    """Bit-encode the survey coordinates of a detection into a 64-bit objID."""
    return ((run & 0xFFFF) << 44) | ((rerun & 0xFF) << 36) | \
           ((camcol & 0xF) << 32) | ((field & 0xFFFF) << 16) | (obj & 0xFFFF)


def decode_obj_id(obj_id: int) -> dict[str, int]:
    """Decode an objID back into its survey coordinates."""
    return {
        "run": (obj_id >> 44) & 0xFFFF,
        "rerun": (obj_id >> 36) & 0xFF,
        "camcol": (obj_id >> 32) & 0xF,
        "field": (obj_id >> 16) & 0xFFFF,
        "obj": obj_id & 0xFFFF,
    }


def encode_field_id(run: int, rerun: int, camcol: int, field: int) -> int:
    """Bit-encode the coordinates of a field into its fieldID."""
    return ((run & 0xFFFF) << 28) | ((rerun & 0xFF) << 20) | \
           ((camcol & 0xF) << 16) | (field & 0xFFFF)


def encode_spec_obj_id(plate: int, mjd: int, fiber: int) -> int:
    """Bit-encode a spectrum's plate / mjd / fiber into its specObjID."""
    return ((plate & 0xFFFF) << 40) | ((mjd & 0xFFFFFF) << 16) | (fiber & 0xFFFF)


class FramesPipeline:
    """Measures detections of true objects within survey fields."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)

    # -- field-level products ------------------------------------------------

    def field_row(self, geometry: FieldGeometry) -> dict:
        """Build a Field table row (object counts are filled in later)."""
        return {
            "fieldID": encode_field_id(geometry.run, geometry.rerun,
                                       geometry.camcol, geometry.field),
            "run": geometry.run,
            "rerun": geometry.rerun,
            "camcol": geometry.camcol,
            "field": geometry.field,
            "stripe": geometry.stripe,
            "strip": geometry.strip,
            "mjd": geometry.mjd,
            "ra": geometry.ra_center,
            "dec": geometry.dec_center,
            "raMin": geometry.ra_min,
            "raMax": geometry.ra_max,
            "decMin": geometry.dec_min,
            "decMax": geometry.dec_max,
            "nObjects": 0,
            "nStars": 0,
            "nGalaxy": 0,
            "quality": geometry.quality,
            "seeing": geometry.seeing,
            "skyBrightness": geometry.sky_brightness,
        }

    def frame_rows(self, geometry: FieldGeometry, *, zoom_levels: int = 5) -> list[dict]:
        """Build the image-pyramid Frame rows for a field (zoom 0..4)."""
        field_id = encode_field_id(geometry.run, geometry.rerun,
                                   geometry.camcol, geometry.field)
        rows = []
        for zoom in range(zoom_levels):
            tile_bytes = max(256, FRAME_TILE_BYTES >> (2 * zoom))
            rows.append({
                "frameID": (field_id << 4) | zoom,
                "fieldID": field_id,
                "zoom": zoom,
                "run": geometry.run,
                "camcol": geometry.camcol,
                "field": geometry.field,
                "stripe": geometry.stripe,
                "ra": geometry.ra_center,
                "dec": geometry.dec_center,
                "a": geometry.ra_min,
                "b": (geometry.ra_max - geometry.ra_min) / 2048.0,
                "c": 0.0,
                "d": geometry.dec_min,
                "e": 0.0,
                "f": (geometry.dec_max - geometry.dec_min) / 1489.0,
                "img": synthesize_jpeg_tile(field_id, zoom, tile_bytes),
            })
        return rows

    # -- object-level products ------------------------------------------------

    def measure(self, source: TrueObject, geometry: FieldGeometry, obj_number: int) -> dict:
        """Measure one detection of ``source`` within ``geometry``.

        The primary/secondary decision and the deblending pass happen
        later (they need to see all detections of the object), so the
        returned row has ``mode`` / PRIMARY / SECONDARY unset.
        """
        rng = self.rng
        ra = source.ra + rng.gauss(0.0, 0.03 / 3600.0)
        dec = source.dec + rng.gauss(0.0, 0.03 / 3600.0)
        cx, cy, cz = radec_to_unit(ra, dec)
        object_type = self._classify(source)
        flags = self._flags(source, geometry, ra, dec)
        status = int(PhotoStatus.SET | PhotoStatus.GOOD)
        if geometry.quality >= 2:
            status |= int(PhotoStatus.OK_RUN | PhotoStatus.OK_SCANLINE | PhotoStatus.OK_STRIPE)

        row = {
            "objID": encode_obj_id(geometry.run, geometry.rerun, geometry.camcol,
                                   geometry.field, obj_number),
            "fieldID": encode_field_id(geometry.run, geometry.rerun,
                                       geometry.camcol, geometry.field),
            "run": geometry.run,
            "rerun": geometry.rerun,
            "camcol": geometry.camcol,
            "field": geometry.field,
            "obj": obj_number,
            "mode": 0,
            "nChild": 0,
            "parentID": 0,
            "type": int(object_type),
            "probPSF": self._prob_psf(source),
            "flags": flags,
            "status": status,
            "ra": ra,
            "dec": dec,
            "cx": cx,
            "cy": cy,
            "cz": cz,
            "htmID": lookup_id(ra, dec),
            "raErr": abs(rng.gauss(0.05, 0.02)),
            "decErr": abs(rng.gauss(0.05, 0.02)),
            "rowv": self._velocity(source.rowv),
            "colv": self._velocity(source.colv),
            "rowvErr": abs(rng.gauss(0.5, 0.2)) if source.kind == "asteroid" else abs(rng.gauss(0.05, 0.02)),
            "colvErr": abs(rng.gauss(0.5, 0.2)) if source.kind == "asteroid" else abs(rng.gauss(0.05, 0.02)),
            "specObjID": 0,
        }
        for band in BANDS:
            row[f"extinction_{band}"] = source.extinction_r * _EXTINCTION_RATIOS[band]
        self._measure_magnitudes(source, row)
        self._measure_shape(source, row)
        return row

    def profile_row(self, photo_row: dict, source: TrueObject) -> dict:
        """Build the radial-profile row (packed blob) for a detection."""
        rng = self.rng
        means: list[float] = []
        errors: list[float] = []
        scale = max(0.6, source.size_arcsec or 1.2)
        for band_index, band in enumerate(BANDS):
            central = 10.0 ** (-0.4 * (source.colors[band] - 24.0))
            for bin_index in range(PROFILE_BINS):
                radius = 0.3 * (1.6 ** bin_index)
                surface_brightness = central * math.exp(-radius / scale)
                noise = abs(rng.gauss(0.0, 0.02 * central)) + 1.0e-6
                means.append(surface_brightness + rng.gauss(0.0, noise))
                errors.append(noise)
        return {
            "objID": photo_row["objID"],
            "nBins": PROFILE_BINS,
            "profMean": pack_profile(means),
            "profErr": pack_profile(errors),
        }

    # -- internals ------------------------------------------------------------

    def _classify(self, source: TrueObject) -> PhotoType:
        """Probabilistic classification: faint galaxies and stars get confused."""
        rng = self.rng
        if source.kind == "galaxy":
            nominal = PhotoType.GALAXY
        elif source.kind in ("star", "qso"):
            nominal = PhotoType.STAR
        elif source.kind == "asteroid":
            # Slow movers are detected as (moving) point sources; streaks as trails
            # are handled by the NEO planted pairs which stay STAR-like but elongated.
            nominal = PhotoType.STAR
        else:
            nominal = PhotoType.UNKNOWN
        confusion = 0.0
        if source.mag_r > 21.0:
            confusion = 0.10
        elif source.mag_r > 20.0:
            confusion = 0.04
        if confusion and rng.random() < confusion:
            return PhotoType.STAR if nominal is PhotoType.GALAXY else PhotoType.GALAXY
        if source.mag_r > 22.3 and rng.random() < 0.05:
            return PhotoType.UNKNOWN
        return nominal

    def _prob_psf(self, source: TrueObject) -> float:
        if source.kind in ("star", "qso", "asteroid"):
            return min(1.0, max(0.0, self.rng.gauss(0.95, 0.05)))
        return min(1.0, max(0.0, self.rng.gauss(0.05, 0.05)))

    def _flags(self, source: TrueObject, geometry: FieldGeometry,
               ra: float, dec: float) -> int:
        rng = self.rng
        flags = 0
        if geometry.quality >= 2:
            flags |= int(PhotoFlags.OK_RUN)
        if source.mag_r < SATURATION_MAGNITUDE or source.tag == "q1_saturated":
            flags |= int(PhotoFlags.SATURATED) | int(PhotoFlags.BRIGHT)
        elif source.mag_r < 15.5:
            flags |= int(PhotoFlags.BRIGHT)
        edge_margin = 0.1 * (geometry.ra_max - geometry.ra_min)
        if (ra < geometry.ra_min + edge_margin or ra > geometry.ra_max - edge_margin):
            flags |= int(PhotoFlags.EDGE)
        if source.kind == "asteroid":
            flags |= int(PhotoFlags.MOVED)
            if source.rowv or source.colv:
                flags |= int(PhotoFlags.DEBLENDED_AS_MOVING)
        if rng.random() < 0.02:
            flags |= int(PhotoFlags.COSMIC_RAY)
        if rng.random() < 0.05:
            flags |= int(PhotoFlags.INTERP)
        if source.mag_r > 22.0:
            flags |= int(PhotoFlags.NOPROFILE)
        return flags

    def _velocity(self, true_velocity: float) -> float:
        if true_velocity == 0.0:
            return abs(self.rng.gauss(0.0, 0.02))
        return max(0.0, true_velocity + self.rng.gauss(0.0, 0.5))

    def _measure_magnitudes(self, source: TrueObject, row: dict) -> None:
        rng = self.rng
        offsets = _MAGNITUDE_OFFSETS[source.kind]
        for kind in MAGNITUDE_KINDS:
            for band in BANDS:
                true_mag = source.colors[band]
                error = 0.01 + 0.05 * math.exp((true_mag - 22.5) / 1.2)
                measured = true_mag + offsets[kind] + rng.gauss(0.0, error)
                row[f"{kind}_{band}"] = measured
                row[f"{kind}Err_{band}"] = error

    def _measure_shape(self, source: TrueObject, row: dict) -> None:
        rng = self.rng
        if source.kind in ("star", "qso"):
            size = abs(rng.gauss(1.4, 0.1))        # the seeing disk
            axis_ratio = min(1.0, max(0.85, rng.gauss(0.97, 0.03)))
        else:
            size = max(1.0, source.size_arcsec * 1.5 + rng.gauss(0.0, 0.2))
            axis_ratio = min(1.0, max(0.1, source.axis_ratio + rng.gauss(0.0, 0.03)))
        angle = math.radians(source.position_angle or rng.uniform(0, 180))
        ellipticity = (1.0 - axis_ratio ** 2) / (1.0 + axis_ratio ** 2)
        for band in BANDS:
            band_size = size * (1.0 + 0.05 * (BANDS.index(band) - 2))
            row[f"petroRad_{band}"] = band_size
            row[f"petroR50_{band}"] = band_size * 0.5
            row[f"petroR90_{band}"] = band_size * 0.9
            row[f"isoA_{band}"] = band_size * 1.2
            row[f"isoB_{band}"] = band_size * 1.2 * axis_ratio
            row[f"isoPhi_{band}"] = math.degrees(angle)
            row[f"q_{band}"] = ellipticity * math.cos(2.0 * angle)
            row[f"u_{band}"] = ellipticity * math.sin(2.0 * angle)
            if source.kind == "galaxy" and source.is_de_vaucouleurs:
                row[f"lnLDeV_{band}"] = rng.gauss(-1.0, 0.5)
                row[f"lnLExp_{band}"] = rng.gauss(-40.0, 10.0)
                row[f"lnLStar_{band}"] = rng.gauss(-200.0, 30.0)
            elif source.kind == "galaxy":
                row[f"lnLDeV_{band}"] = rng.gauss(-40.0, 10.0)
                row[f"lnLExp_{band}"] = rng.gauss(-1.0, 0.5)
                row[f"lnLStar_{band}"] = rng.gauss(-200.0, 30.0)
            else:
                row[f"lnLDeV_{band}"] = rng.gauss(-100.0, 20.0)
                row[f"lnLExp_{band}"] = rng.gauss(-100.0, 20.0)
                row[f"lnLStar_{band}"] = rng.gauss(-0.5, 0.3)


def synthesize_jpeg_tile(seed: int, zoom: int, size_bytes: int) -> bytes:
    """A deterministic stand-in for a JPEG tile of roughly ``size_bytes``.

    The tile is compressible pseudo-noise rather than a real JPEG; what
    matters to the reproduction is that Frame rows carry blobs of the
    right order of magnitude so the space accounting behaves like the
    paper's (images stored inside the database, TerraServer-style).
    """
    generator = random.Random((seed << 3) | zoom)
    raw = bytes(generator.getrandbits(8) for _ in range(max(64, size_bytes // 4)))
    payload = (raw * 4)[:size_bytes]
    return b"JFIF" + zlib.compress(payload, 1)[:max(0, size_bytes - 4)]
