"""Spectroscopic target selection and plate design.

"About 600 spectra are observed at once using a single plate with
optical fibers going to different CCDs" (paper §9).  The targeting pass
selects roughly the Early Data Release's fraction of photometric
objects for spectroscopy — bright primary galaxies (the main galaxy
sample), colour-selected quasar candidates and a sprinkling of stars —
and packs them onto plates of at most 640 fibers.

The plate-drilling anecdote of §11 (designing special plates for
under-sampled parameter space) is reproduced by
:func:`design_special_plate`, which selects targets from an arbitrary
query predicate instead of the standard targeting cuts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..schema.flags import PhotoFlags, PhotoType

#: Fibers per plate (640 drilled, ~600 used for science).
FIBERS_PER_PLATE = 640
SCIENCE_FIBERS_PER_PLATE = 600

#: Fraction of photometric objects that end up with a spectrum; Table 1's
#: SpecObj/PhotoObj ratio (63k / 14M ≈ 0.45%).
TARGET_FRACTION = 0.0045


@dataclass
class Target:
    """One object selected for spectroscopy."""

    obj_id: int
    ra: float
    dec: float
    kind: str               # 'galaxy', 'qso' or 'star'
    fiber_mag_g: float
    fiber_mag_r: float
    fiber_mag_i: float
    redshift_hint: float = 0.0
    has_emission_lines: bool = False


@dataclass
class PlateDesign:
    """A drilled plate and the fibers assigned on it."""

    plate_id: int
    plate_number: int
    mjd: float
    ra: float
    dec: float
    program: str
    targets: list[tuple[int, Target]] = field(default_factory=list)  # (fiber, target)

    @property
    def n_fibers(self) -> int:
        return len(self.targets)


def select_targets(photo_rows: Sequence[dict], true_lookup: dict[int, object], *,
                   rng: Optional[random.Random] = None,
                   target_fraction: float = TARGET_FRACTION) -> list[Target]:
    """Select spectroscopic targets from the photometric catalog.

    ``true_lookup`` maps objID to the originating
    :class:`~repro.pipeline.population.TrueObject` so the simulated
    spectra downstream can use the true redshift; unmatched rows are
    treated as stars.
    """
    rng = rng or random.Random(0)
    primaries = [row for row in photo_rows
                 if row["flags"] & int(PhotoFlags.PRIMARY)]
    if not primaries:
        return []
    wanted = max(3, int(round(len(photo_rows) * target_fraction)))

    galaxies = [row for row in primaries if row["type"] == int(PhotoType.GALAXY)]
    galaxies.sort(key=lambda row: row["petroMag_r"])
    quasar_candidates = [row for row in primaries
                         if row["type"] == int(PhotoType.STAR)
                         and (row["modelMag_u"] - row["modelMag_g"]) < 0.6
                         and row["modelMag_r"] < 20.5]
    stars = [row for row in primaries if row["type"] == int(PhotoType.STAR)]

    quota_galaxy = int(wanted * 0.80)
    quota_qso = int(wanted * 0.12)
    quota_star = max(1, wanted - quota_galaxy - quota_qso)

    chosen: list[dict] = []
    chosen.extend(galaxies[:quota_galaxy])
    chosen.extend(quasar_candidates[:quota_qso])
    remaining_stars = [row for row in stars if row not in quasar_candidates[:quota_qso]]
    rng.shuffle(remaining_stars)
    chosen.extend(remaining_stars[:quota_star])

    targets = []
    seen: set[int] = set()
    for row in chosen:
        if row["objID"] in seen:
            continue
        seen.add(row["objID"])
        targets.append(_target_from_row(row, true_lookup))
    return targets


def _target_from_row(row: dict, true_lookup: dict[int, object]) -> Target:
    source = true_lookup.get(row["objID"])
    kind = "star"
    redshift = 0.0
    emission = False
    if source is not None:
        kind = getattr(source, "kind", "star")
        if kind == "asteroid":
            kind = "star"
        redshift = getattr(source, "redshift", 0.0)
        emission = getattr(source, "has_emission_lines", False)
    elif row["type"] == int(PhotoType.GALAXY):
        kind = "galaxy"
        redshift = 0.1
    return Target(
        obj_id=row["objID"],
        ra=row["ra"],
        dec=row["dec"],
        kind=kind,
        fiber_mag_g=row["fiberMag_g"],
        fiber_mag_r=row["fiberMag_r"],
        fiber_mag_i=row["fiberMag_i"],
        redshift_hint=redshift,
        has_emission_lines=emission,
    )


def design_plates(targets: Sequence[Target], *, mjd_start: float = 51690.0,
                  plate_number_start: int = 266,
                  fibers_per_plate: int = SCIENCE_FIBERS_PER_PLATE,
                  program: str = "main") -> list[PlateDesign]:
    """Pack targets onto plates of at most ``fibers_per_plate`` fibers.

    Targets are sorted by position so each plate covers a compact patch
    of sky, as a drilled 3-degree plate would.
    """
    ordered = sorted(targets, key=lambda target: (round(target.dec, 1), target.ra))
    plates: list[PlateDesign] = []
    for plate_index in range(0, max(1, (len(ordered) + fibers_per_plate - 1) // fibers_per_plate)):
        chunk = ordered[plate_index * fibers_per_plate:(plate_index + 1) * fibers_per_plate]
        if not chunk and plates:
            break
        plate_number = plate_number_start + plate_index
        mjd = mjd_start + plate_index
        center_ra = sum(target.ra for target in chunk) / len(chunk) if chunk else 0.0
        center_dec = sum(target.dec for target in chunk) / len(chunk) if chunk else 0.0
        plate = PlateDesign(
            plate_id=(plate_number << 20) | int(mjd),
            plate_number=plate_number,
            mjd=mjd,
            ra=center_ra,
            dec=center_dec,
            program=program,
        )
        for fiber, target in enumerate(chunk, start=1):
            plate.targets.append((fiber, target))
        plates.append(plate)
    return plates


def design_special_plate(photo_rows: Iterable[dict], predicate: Callable[[dict], bool],
                         true_lookup: dict[int, object], *,
                         max_targets: int = 1000,
                         plate_number: int = 999,
                         mjd: float = 52000.0,
                         program: str = "special") -> PlateDesign:
    """Design a special-purpose plate from an arbitrary selection predicate.

    This reproduces the paper's closing anecdote: "by writing some SQL
    and playing with the data, we were able to develop a drilling plan
    in an evening" to obtain spectra of 1 000 galaxies from an
    under-sampled region of colour space.
    """
    selected_rows = [row for row in photo_rows if predicate(row)][:max_targets]
    targets = [_target_from_row(row, true_lookup) for row in selected_rows]
    plate = PlateDesign(
        plate_id=(plate_number << 20) | int(mjd),
        plate_number=plate_number,
        mjd=mjd,
        ra=sum(t.ra for t in targets) / len(targets) if targets else 0.0,
        dec=sum(t.dec for t in targets) / len(targets) if targets else 0.0,
        program=program,
    )
    for fiber, target in enumerate(targets, start=1):
        plate.targets.append((fiber, target))
    return plate
